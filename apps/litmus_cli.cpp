// litmus_cli — run a Litmus assessment from CSV files.
//
//   litmus_cli export-demo <dir>
//       writes demo topology.csv / series.csv (a simulated region with a
//       real +1.5-sigma change at the first RNC at bin 0) so the tool can
//       be tried end-to-end without any carrier data.
//
//   litmus_cli assess --topology topo.csv --series series.csv
//                     --study 2[,5,...] --kpi voice_retainability
//                     --change-bin 0
//                     [--controls 3,4,...]          explicit control group
//                     [--select region|msc|zip]     or predicate selection
//                     [--before-days 14] [--after-days 14] [--seed N]
//                     [--explain]                   per-verdict audit trail
//                     [--snapshot-cache DIR]        binary ingest cache
//                     [--metrics-json FILE] [--trace-json FILE]
//                     [--events-jsonl FILE]
//       prints the per-element verdicts, the vote, and the baselines'
//       reads for comparison. The observability flags enable the obs layer
//       for the run and dump the metrics registry / span trace as JSON.
//       --events-jsonl additionally streams structured run events to FILE
//       and persists the run's provenance (run_manifest.json, metrics.json)
//       into FILE's directory so the run can be audited and diffed later.
//
//   litmus_cli diff-runs A/ B/
//       compares two persisted runs (manifest, verdict set, metrics) and
//       exits 0 when equivalent, 3 on drift.
//
//   litmus_cli profile <run-dir|trace.json>
//       summarizes a profile trace (--profile-json output, a --trace-json
//       span dump, or a run directory containing either) into a per-stage
//       table: count, total, exact p50/p99, % of wall, slowest spans.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cellnet/builder.h"
#include "io/changes.h"
#include "io/csv.h"
#include "io/ingest.h"
#include "io/mapped_store.h"
#include "io/store.h"
#include "litmus/batch.h"
#include "litmus/did.h"
#include "litmus/monitor.h"
#include "litmus/panel_cache.h"
#include "litmus/report.h"
#include "litmus/study_only.h"
#include "obs/chrometrace.h"
#include "obs/events.h"
#include "obs/http.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/rundiff.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "parallel/pool.h"
#include "simkit/generator.h"
#include "tsmath/simd/dispatch.h"
#include "simkit/network_events.h"
#include "simkit/scale.h"
#include "simkit/seasonality.h"

using namespace litmus;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  litmus_cli export-demo <dir>\n"
               "  litmus_cli assess --topology FILE --series FILE --study "
               "IDS --kpi NAME --change-bin N\n"
               "              [--controls IDS | --select region|msc|zip]\n"
               "              [--before-days N] [--after-days N] [--seed N] "
               "[--explain]\n"
               "              [--adaptive-sampling on|off] "
               "[--min-iterations N] [--stability-rounds N]\n"
               "              [--threads N] [--panel-cache-mb N] "
               "[--snapshot-cache DIR]\n"
               "              [--simd scalar|sse2|avx2|avx512|neon] "
               "[--fast-math-kernels]\n"
               "              [--metrics-json FILE] [--trace-json FILE] "
               "[--events-jsonl FILE]\n"
               "              [--profile-json FILE] [--profile-sample N]\n"
               "  litmus_cli batch --topology FILE --changes FILE\n"
               "              (--series FILE [--store heap|mmap] | "
               "--series-snap SNAP)\n"
               "              [--select region|msc|zip] [--shards N]\n"
               "              [--before-bins N] [--after-bins N] "
               "[--iterations N]\n"
               "              [--adaptive-sampling on|off] "
               "[--min-iterations N] [--stability-rounds N]\n"
               "              [--threads N] [--panel-cache-mb N] "
               "[--snapshot-cache DIR] [--seed N]\n"
               "              [--simd TIER] [--fast-math-kernels]\n"
               "              [--metrics-json FILE] [--trace-json FILE] "
               "[--events-jsonl FILE]\n"
               "              [--profile-json FILE] [--profile-sample N]\n"
               "  litmus_cli gen-corpus <dir> [--elements N] "
               "[--cluster-size N]\n"
               "              [--change-stride N] [--improve-stride N] "
               "[--before-bins N]\n"
               "              [--after-bins N] [--shift-sigma F] [--seed N]\n"
               "  litmus_cli monitor --topology FILE --series FILE --study "
               "IDS --kpi NAME --change-bin N\n"
               "              [--controls IDS | --select region|msc|zip]\n"
               "              [--before-days N] [--window-days N] "
               "[--step-hours N] [--confirm N]\n"
               "              [--tick-ms N] [--linger-ms N] "
               "[plus the shared assess/batch flags]\n"
               "  litmus_cli diff-runs A_DIR B_DIR [--max-flips N]\n"
               "              [--metric-tolerance F] [--wall-tolerance F] "
               "[--ignore-manifest]\n"
               "  litmus_cli profile RUN_DIR|TRACE.json [--top N]\n"
               "  litmus_cli --version\n"
               "\n"
               "--threads N (or LITMUS_THREADS): worker threads for the\n"
               "sampling/batch fan-out; results are identical at any count.\n"
               "--panel-cache-mb N (or LITMUS_PANEL_CACHE_MB): byte budget\n"
               "of the shared Gram-panel cache (default 64; 0 disables);\n"
               "results are identical at any setting.\n"
               "--snapshot-cache DIR (or LITMUS_SNAPSHOT_CACHE): binary\n"
               "series-ingest cache keyed by the CSV's fingerprint; repeated\n"
               "runs over an unchanged export skip parsing entirely and are\n"
               "bit-identical to a parsed run.\n"
               "batch --store mmap serves the series from the snapshot via\n"
               "mmap (read-only shared pages, zero-copy); --series-snap SNAP\n"
               "maps a .litmus-snap directly with no CSV at all. batch\n"
               "--shards N (or LITMUS_SHARDS) partitions records by element\n"
               "across shard-local panel caches; with --events-jsonl each\n"
               "shard persists shard-NN/{run_manifest.json,events.jsonl}.\n"
               "All three stores and any shard count are bit-identical.\n"
               "gen-corpus streams a zip-clustered synthetic corpus\n"
               "(topology/changes CSV + series snapshot) at any element\n"
               "count with bounded memory.\n"
               "--adaptive-sampling on|off: sequential early stopping of\n"
               "the robustness iterations — sample in geometric rounds\n"
               "(first checkpoint --min-iterations, default 8) and stop\n"
               "after --stability-rounds (default 2) consecutive checkpoints\n"
               "where the verdict is insensitive to further rounds under a\n"
               "jackknife perturbation of the median forecast. Deterministic\n"
               "at any thread/shard count; borderline elements spend the\n"
               "full --iterations budget. Default off (pre-adaptive bits).\n"
               "--simd TIER (or LITMUS_SIMD): force the SIMD kernel tier\n"
               "instead of the detected best; results are bit-identical at\n"
               "any tier. --fast-math-kernels enables reassociated (FMA)\n"
               "kernels — faster, but results may differ in the last bits;\n"
               "recorded in the manifest and GATING for diff-runs.\n"
               "--events-jsonl FILE: structured JSONL event stream; also\n"
               "writes run_manifest.json + metrics.json into FILE's\n"
               "directory, the layout diff-runs consumes.\n"
               "--profile-json FILE: cross-thread span timeline as Chrome\n"
               "trace_event JSON (open in chrome://tracing or Perfetto);\n"
               "--profile-sample N records 1 span in N (default: all).\n"
               "`profile` summarizes such a file — or a run directory\n"
               "holding profile.json/trace.json — as a p50/p99 stage table.\n"
               "--serve [ADDR:]PORT (or LITMUS_SERVE): embedded read-only\n"
               "HTTP plane while the run is in flight — Prometheus /metrics,\n"
               "/healthz, /readyz (503 when heartbeats go stale; tune with\n"
               "--ready-stale-ms, default 30000), JSON /status, and\n"
               "/events?since=SEQ. Port 0 picks an ephemeral port; the bound\n"
               "address is printed and recorded in the run manifest. All\n"
               "serve.* metrics are informational to diff-runs.\n"
               "`monitor` replays stored bins through the sliding-window\n"
               "state machines (DESIGN.md §12); --tick-ms paces the replay,\n"
               "--linger-ms keeps the HTTP plane up after the last step.\n"
               "diff-runs exit codes: 0 no drift, 3 drift, 1 error.\n");
  return 2;
}

// Observability flags shared by assess and batch: turn collection on
// before the pipeline runs, dump the requested JSON files after.
//
// With --events-jsonl the session becomes a *persisted run*: a RunManifest
// (version, build flags, threads, seed, resolved config, input
// fingerprints) is written as run_manifest.json into the event file's
// directory, a structured JSONL event stream brackets the pipeline with
// run_start..run_end, and metrics.json lands in the same directory — the
// exact layout `litmus_cli diff-runs` consumes. The manifest is also
// embedded in every JSON artifact the session writes.
//
// Output files are never silently overwritten: an existing file rotates to
// "<path>.old" (then ".old.1", ".old.2", ...) with a warning, and missing
// parent directories are created (obs::open_output_file).
class ObsSession {
 public:
  ObsSession(const std::string& command,
             const std::map<std::string, std::string>& args) {
    if (const auto it = args.find("metrics-json"); it != args.end())
      metrics_path_ = it->second;
    if (const auto it = args.find("trace-json"); it != args.end())
      trace_path_ = it->second;
    if (const auto it = args.find("events-jsonl"); it != args.end())
      events_path_ = it->second;
    if (const auto it = args.find("profile-json"); it != args.end())
      profile_path_ = it->second;
    if (const auto it = args.find("serve"); it != args.end())
      serve_spec_ = it->second;
    else if (const char* env = std::getenv("LITMUS_SERVE"))
      serve_spec_ = env;
    if (const auto it = args.find("ready-stale-ms"); it != args.end()) {
      const auto v = io::parse_int(it->second);
      if (!v || *v <= 0)
        throw std::runtime_error("bad --ready-stale-ms: " + it->second);
      ready_stale_ms_ = static_cast<std::uint64_t>(*v);
    }

    manifest_.tool = "litmus_cli " + command;
    manifest_.build_flags = obs::build_flags_string();
    manifest_.threads = par::threads();
    manifest_.simd_detected = ts::simd::tier_name(ts::simd::detected_tier());
    manifest_.simd_dispatch = ts::simd::tier_name(ts::simd::active_tier());
    manifest_.fast_math = ts::simd::fast_math();
    manifest_.started_at_utc = obs::utc_timestamp_now();
    for (const auto& [key, value] : args)
      manifest_.add_config("--" + key, value);

    if (!metrics_path_.empty() || !events_path_.empty() ||
        !serve_spec_.empty())
      obs::set_enabled(true);
    if (!trace_path_.empty() || !profile_path_.empty()) {
      obs::set_thread_name("main");
      obs::TraceConfig config;
      if (const auto it = args.find("profile-sample"); it != args.end()) {
        const auto v = io::parse_int(it->second);
        if (!v || *v <= 0)
          throw std::runtime_error("bad --profile-sample: " + it->second);
        if (*v > 1) {
          config.mode = obs::TraceMode::kSampled;
          config.sample_every = static_cast<std::uint32_t>(*v);
        }
      }
      obs::Tracer::global().start(config);
    }
  }

  ~ObsSession() { obs::set_events(nullptr); }

  /// Fingerprints an input file into the manifest (call for every CSV the
  /// command loads, before start()).
  void add_input(const std::string& path) { manifest_.add_input(path); }
  /// Records an input whose fingerprint the ingest layer already computed.
  void add_input(const std::string& path, std::uint64_t bytes,
                 std::uint64_t hash) {
    manifest_.add_input(path, bytes, hash);
  }
  /// Adds a resolved-config note (e.g. parsed-vs-snapshot per input);
  /// "ingest."-prefixed keys are informational in diff-runs.
  void note(std::string key, std::string value) {
    manifest_.add_config(std::move(key), std::move(value));
  }
  void set_seed(std::uint64_t seed) { manifest_.seed = seed; }

  /// Registers extra /status members (pool stats are always included;
  /// this adds command-specific rows, e.g. monitor state machines).
  /// Call before start().
  void set_status_fn(obs::HttpServer::StatusFn fn) {
    status_fn_ = std::move(fn);
  }
  bool serving() const noexcept { return server_.running(); }

  /// Run directory (the --events-jsonl file's parent); empty when the run
  /// is not persisted. Valid after start().
  const std::string& run_dir() const noexcept { return run_dir_; }

  /// Writes a copy of the run manifest into a shard directory with the
  /// shard's identity appended, so each shard-NN/ is itself a loadable
  /// run directory and diff-runs can stitch the pieces back together.
  void write_shard_manifest(const std::string& dir, std::size_t shard,
                            std::size_t records) const {
    obs::RunManifest m = manifest_;
    m.add_config("shard.index", std::to_string(shard));
    m.add_config("shard.records", std::to_string(records));
    m.write_file(dir + "/run_manifest.json");
  }

  /// Freezes the manifest, persists it, and opens the event stream; call
  /// after inputs are registered and before the pipeline runs. With
  /// --serve the HTTP plane comes up first so the bound address lands in
  /// the manifest (and thus in run_manifest.json and every artifact).
  void start() {
    if (!serve_spec_.empty()) {
      const auto addr = obs::parse_serve_addr(serve_spec_);
      if (!addr)
        throw std::runtime_error(
            "bad --serve (want PORT or ADDR:PORT): " + serve_spec_);
      obs::ServeOptions opts;
      opts.host = addr->first;
      opts.port = addr->second;
      opts.ready_stale_after_ms = ready_stale_ms_;
      server_.set_manifest(&manifest_);
      server_.set_status_fn([fn = status_fn_](obs::JsonWriter& w) {
        const par::PoolStats pool = par::pool_stats();
        w.key("pool").begin_object();
        w.member("workers", static_cast<std::uint64_t>(pool.workers))
            .member("queue_depth",
                    static_cast<std::uint64_t>(pool.queue_depth))
            .member("tasks_submitted", pool.tasks_submitted)
            .member("tasks_completed", pool.tasks_completed);
        w.end_object();
        if (fn) fn(w);
      });
      const std::string bound = server_.start(opts);
      manifest_.add_config("serve.addr", bound);
      std::printf("serving on http://%s  (/metrics /healthz /readyz "
                  "/status /events)\n",
                  bound.c_str());
      std::fflush(stdout);  // CI polls stdout for the bound port
    }
    if (!events_path_.empty()) {
      run_dir_ = std::filesystem::path(events_path_).parent_path().string();
      if (run_dir_.empty()) run_dir_ = ".";
      manifest_.write_file(run_dir_ + "/run_manifest.json");
      events_ = obs::EventLog::open(events_path_);
    } else if (server_.running()) {
      // No JSONL file requested, but /events needs something to page:
      // keep a ring-only log in memory.
      events_ = std::make_unique<obs::EventLog>();
    }
    if (events_) {
      obs::set_events(events_.get());
      events_->emit(obs::EventType::kRunStart, [&](obs::JsonWriter& w) {
        w.member("tool", manifest_.tool)
            .member("version", manifest_.version)
            .member("seed", manifest_.seed)
            .member("threads",
                    static_cast<std::uint64_t>(manifest_.threads));
      });
    }
    run_t0_ns_ = obs::now_ns();
  }

  /// Writes the requested dumps; throws on unwritable paths.
  void finish() {
    // The plane goes down with the run: stop before the final dumps so a
    // scrape can never observe a half-written end state.
    server_.stop();
    if (events_) {
      const double wall_s =
          static_cast<double>(obs::now_ns() - run_t0_ns_) / 1e9;
      events_->emit(obs::EventType::kRunEnd, [&](obs::JsonWriter& w) {
        w.member("wall_s", wall_s).member("status", "ok");
      });
      obs::set_events(nullptr);
      const std::uint64_t n = events_->events_written();
      events_.reset();  // flush + close
      if (!events_path_.empty())
        std::printf("wrote %llu event(s) to %s\n",
                    static_cast<unsigned long long>(n),
                    events_path_.c_str());
    }
    if (!trace_path_.empty() || !profile_path_.empty()) {
      obs::Tracer::global().stop();
      const auto spans = obs::Tracer::global().spans();
      const std::uint64_t dropped = obs::Tracer::global().dropped();
      if (dropped > 0)
        std::fprintf(stderr,
                     "warning: %llu span(s) dropped (ring wrap); the trace "
                     "keeps the most recent window\n",
                     static_cast<unsigned long long>(dropped));
      if (!trace_path_.empty()) {
        std::ofstream out = obs::open_output_file(trace_path_);
        obs::write_trace_json(out, spans, obs::Tracer::global().epoch_ns(),
                              &manifest_);
        if (!out)
          throw std::runtime_error("cannot write trace json: " +
                                   trace_path_);
        std::printf("wrote %zu span(s) to %s\n", spans.size(),
                    trace_path_.c_str());
      }
      if (!profile_path_.empty()) {
        std::ofstream out = obs::open_output_file(profile_path_);
        const auto names = obs::thread_names();
        obs::write_chrome_trace(out, spans,
                                obs::Tracer::global().epoch_ns(), names,
                                dropped, &manifest_);
        if (!out)
          throw std::runtime_error("cannot write profile json: " +
                                   profile_path_);
        std::printf("wrote %zu span(s), %zu named thread(s) to %s\n",
                    spans.size(), names.size(), profile_path_.c_str());
      }
    }
    if (!metrics_path_.empty() || !run_dir_.empty()) {
      obs::set_enabled(false);
      const auto snapshot = obs::Registry::global().snapshot();
      std::vector<std::string> paths;
      if (!metrics_path_.empty()) paths.push_back(metrics_path_);
      if (!run_dir_.empty()) {
        const std::string run_metrics = run_dir_ + "/metrics.json";
        if (metrics_path_.empty() ||
            std::filesystem::path(metrics_path_) !=
                std::filesystem::path(run_metrics))
          paths.push_back(run_metrics);
      }
      for (const std::string& path : paths) {
        std::ofstream out = obs::open_output_file(path);
        obs::write_metrics_json(out, snapshot, &manifest_);
        if (!out)
          throw std::runtime_error("cannot write metrics json: " + path);
        std::printf("wrote metrics to %s\n", path.c_str());
      }
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string events_path_;
  std::string profile_path_;
  std::string run_dir_;
  std::string serve_spec_;
  std::uint64_t ready_stale_ms_ = 30000;
  obs::HttpServer::StatusFn status_fn_;
  obs::RunManifest manifest_;
  std::unique_ptr<obs::EventLog> events_;
  std::uint64_t run_t0_ns_ = 0;
  // Declared last: destroyed first, so the serving thread joins before
  // the manifest and event log it reads go away.
  obs::HttpServer server_;
};

// --threads N overrides the worker count (else LITMUS_THREADS, else
// hardware concurrency); verdicts are bit-identical at any setting.
void apply_threads_flag(const std::map<std::string, std::string>& args) {
  const auto it = args.find("threads");
  if (it == args.end()) return;
  const auto v = io::parse_int(it->second);
  if (!v || *v <= 0) throw std::runtime_error("bad --threads: " + it->second);
  par::set_threads(static_cast<std::size_t>(*v));
}

// --panel-cache-mb N overrides the shared panel cache's byte budget (else
// LITMUS_PANEL_CACHE_MB, else 64 MiB); 0 disables caching. Verdicts are
// bit-identical at any setting (DESIGN.md §10).
void apply_panel_cache_flag(const std::map<std::string, std::string>& args) {
  const auto it = args.find("panel-cache-mb");
  if (it == args.end()) return;
  const auto v = io::parse_int(it->second);
  if (!v || *v < 0)
    throw std::runtime_error("bad --panel-cache-mb: " + it->second);
  core::PanelCache::global().set_capacity_bytes(
      static_cast<std::size_t>(*v) << 20);
}

// --simd TIER forces the kernel dispatch tier (else LITMUS_SIMD, else the
// best the host supports); default-mode results are bit-identical at any
// tier (DESIGN.md §13). --fast-math-kernels switches the dot/Gram kernels
// to their reassociated FMA variants: faster, but the last bits may move,
// so the manifest records it and diff-runs gates on it.
void apply_simd_flags(const std::map<std::string, std::string>& args) {
  if (const auto it = args.find("simd"); it != args.end()) {
    const auto tier = ts::simd::parse_tier(it->second);
    if (!tier)
      throw std::runtime_error(
          "bad --simd: " + it->second +
          " (want scalar|sse2|avx2|avx512|neon)");
    if (!ts::simd::set_active_tier(*tier))
      throw std::runtime_error("--simd " + it->second +
                               " is not supported on this host/build (" +
                               ts::simd::describe() + ")");
  }
  if (args.contains("fast-math-kernels")) ts::simd::set_fast_math(true);
}

// --adaptive-sampling on|off toggles sequential early stopping of the
// robustness iterations (DESIGN.md §16); --min-iterations N sets the first
// stability checkpoint and --stability-rounds N the consecutive stable
// checkpoints required to stop. Off (default) preserves pre-adaptive
// output bit-for-bit; on changes iterations-used (and therefore forecast
// bits) but is CI-validated to flip no Table-2 verdict. The manifest
// records all three, and diff-runs gates when they differ across runs.
void apply_adaptive_flags(const std::map<std::string, std::string>& args,
                          core::SpatialRegressionParams& params) {
  if (const auto it = args.find("adaptive-sampling"); it != args.end()) {
    if (it->second == "on")
      params.adaptive_sampling = true;
    else if (it->second == "off")
      params.adaptive_sampling = false;
    else
      throw std::runtime_error("bad --adaptive-sampling: " + it->second +
                               " (want on|off)");
  }
  const auto count_flag = [&](const char* key, std::size_t& out) {
    const auto it = args.find(key);
    if (it == args.end()) return;
    const auto v = io::parse_int(it->second);
    if (!v || *v <= 0)
      throw std::runtime_error(std::string("bad --") + key + ": " +
                               it->second);
    out = static_cast<std::size_t>(*v);
  };
  count_flag("min-iterations", params.min_iterations);
  count_flag("stability-rounds", params.stability_rounds);
}

// --snapshot-cache DIR (else LITMUS_SNAPSHOT_CACHE) enables the binary
// series-ingest cache (DESIGN.md §11); loaded results are bit-identical
// to parsing, so the setting never gates diff-runs.
std::string resolve_snapshot_dir(
    const std::map<std::string, std::string>& args) {
  if (const auto it = args.find("snapshot-cache"); it != args.end())
    return it->second;
  if (const char* env = std::getenv("LITMUS_SNAPSHOT_CACHE")) return env;
  return "";
}

// Loads the series CSV through the high-throughput ingest layer and
// registers provenance: the source CSV's fingerprint (identical whether
// the bytes were parsed or snapshot-loaded) plus a parsed-vs-snapshot
// note per input.
io::IngestReport load_series_input(const std::string& path,
                                   io::SeriesStore& store,
                                   const std::map<std::string, std::string>&
                                       args,
                                   ObsSession& session) {
  io::IngestOptions opts;
  opts.snapshot_dir = resolve_snapshot_dir(args);
  const io::IngestReport rep = io::ingest_series_file(path, store, opts);
  session.add_input(path, rep.bytes, rep.fingerprint);
  session.note("ingest.series",
               rep.from_snapshot ? "snapshot" : "csv");
  return rep;
}

// --select mode -> control predicate, shared by assess/monitor/batch. The
// batch driver additionally gets a conservative equivalence-group key
// (BatchConfig::group_key) for each mode, so candidate enumeration scales
// with the group size instead of the network size: every element the
// predicate could accept shares the study element's key (the predicate
// still runs per candidate, so the key only has to be conservative).
struct SelectionMode {
  core::ControlPredicate predicate;
  std::function<std::uint64_t(const net::Topology&, net::ElementId)>
      group_key;
};

SelectionMode make_selection_mode(const std::string& mode) {
  SelectionMode out;
  if (mode == "region") {
    out.predicate =
        core::all_of({core::same_region(), core::same_technology()});
    out.group_key = [](const net::Topology& t, net::ElementId id) {
      const auto& e = t.get(id);
      return static_cast<std::uint64_t>(e.region) * 8 +
             static_cast<std::uint64_t>(e.technology);
    };
  } else if (mode == "msc") {
    out.predicate =
        core::all_of({core::same_upstream(net::ElementKind::kMsc),
                      core::same_technology()});
    out.group_key = [](const net::Topology& t, net::ElementId id) {
      const auto up = t.ancestor_of_kind(id, net::ElementKind::kMsc);
      const std::uint64_t msc = up ? up->value + 1ull : 0ull;
      return msc * 8 + static_cast<std::uint64_t>(t.get(id).technology);
    };
  } else if (mode == "zip") {
    out.predicate = core::all_of({core::same_zip(), core::same_technology()});
    out.group_key = [](const net::Topology& t, net::ElementId id) {
      const auto& e = t.get(id);
      return static_cast<std::uint64_t>(e.zip.value) * 8 +
             static_cast<std::uint64_t>(e.technology);
    };
  } else {
    throw std::runtime_error("unknown --select mode: " + mode);
  }
  return out;
}

std::vector<net::ElementId> parse_ids(const std::string& csv) {
  std::vector<net::ElementId> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const auto v = io::parse_int(tok);
    if (!v || *v <= 0) throw std::runtime_error("bad element id: " + tok);
    out.push_back(net::ElementId{static_cast<std::uint32_t>(*v)});
  }
  return out;
}

int export_demo(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  net::Topology topo =
      net::build_small_region(net::Region::kNortheast, 20130209, 5, 6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);

  sim::UpstreamEvent change;
  change.source = rncs[0];
  change.start_bin = 0;
  change.sigma_shift = +1.5;
  sim::KpiGenerator gen(topo, {.seed = 20130209});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::FoliageFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{change}));

  {
    std::ofstream out(dir + "/topology.csv");
    if (!out) {
      std::fprintf(stderr, "cannot write %s/topology.csv\n", dir.c_str());
      return 1;
    }
    io::save_topology_csv(out, topo);
  }
  {
    std::ofstream out(dir + "/series.csv");
    for (const auto rnc : rncs) {
      for (const auto kpi_id : {kpi::KpiId::kVoiceRetainability,
                                kpi::KpiId::kDataRetainability}) {
        const ts::TimeSeries s =
            gen.kpi_series(rnc, kpi_id, -14 * 24, 28 * 24);
        io::save_series_csv(out, rnc, kpi_id, s);
      }
    }
  }
  {
    std::ofstream out(dir + "/changes.csv");
    chg::ChangeLog log;
    chg::ChangeRecord record;
    record.element = rncs[0];
    record.type = chg::ChangeType::kFeatureActivation;
    record.bin = 0;
    record.expectation = chg::Expectation::kImprovement;
    record.target_kpi = kpi::KpiId::kVoiceRetainability;
    record.parameter = "son=on";
    record.description = "demo feature activation";
    log.add(record);
    io::save_changes_csv(out, log);
  }
  std::printf("wrote %s/{topology,series,changes}.csv\n", dir.c_str());
  std::printf("try: litmus_cli assess --topology %s/topology.csv --series "
              "%s/series.csv --study %u --kpi voice_retainability "
              "--change-bin 0 --select msc\n",
              dir.c_str(), dir.c_str(), rncs[0].value);
  return 0;
}

int assess(const std::map<std::string, std::string>& args) {
  const auto need = [&](const char* key) -> const std::string& {
    const auto it = args.find(key);
    if (it == args.end())
      throw std::runtime_error(std::string("missing --") + key);
    return it->second;
  };

  apply_threads_flag(args);  // validate before the expensive loads
  apply_panel_cache_flag(args);
  apply_simd_flags(args);

  // The session opens before the loads so the ingest layer's counters and
  // throughput gauges land in --metrics-json.
  ObsSession obs_session("assess", args);

  std::ifstream topo_in(need("topology"));
  if (!topo_in) throw std::runtime_error("cannot open topology file");
  const net::Topology topo = io::load_topology_csv(topo_in);
  obs_session.add_input(need("topology"));

  io::SeriesStore store;
  const io::IngestReport ing =
      load_series_input(need("series"), store, args, obs_session);
  std::printf("loaded %zu elements, %zu series (%llu rows, %s)\n",
              topo.size(), store.size(),
              static_cast<unsigned long long>(ing.rows),
              ing.from_snapshot ? "snapshot" : "csv");

  const std::vector<net::ElementId> study = parse_ids(need("study"));
  const auto kpi_id = kpi::parse_kpi(need("kpi"));
  if (!kpi_id) throw std::runtime_error("unknown KPI name");
  const auto change_bin = io::parse_int(need("change-bin"));
  if (!change_bin) throw std::runtime_error("bad --change-bin");

  core::AssessmentConfig cfg;
  if (const auto it = args.find("before-days"); it != args.end())
    cfg.before_bins = static_cast<std::size_t>(std::stoi(it->second)) * 24;
  if (const auto it = args.find("after-days"); it != args.end())
    cfg.after_bins = static_cast<std::size_t>(std::stoi(it->second)) * 24;
  if (const auto it = args.find("seed"); it != args.end()) {
    const auto v = io::parse_int(it->second);
    if (!v || *v < 0) throw std::runtime_error("bad --seed: " + it->second);
    cfg.regression.seed = static_cast<std::uint64_t>(*v);
  }
  apply_adaptive_flags(args, cfg.regression);
  core::Assessor assessor(topo, store.provider(), cfg);

  obs_session.set_seed(cfg.regression.seed);
  obs_session.start();
  core::ChangeAssessment a;
  if (const auto it = args.find("controls"); it != args.end()) {
    a = assessor.assess(study, parse_ids(it->second), *kpi_id, *change_bin);
  } else {
    std::string mode = "region";
    if (const auto sel = args.find("select"); sel != args.end())
      mode = sel->second;
    a = assessor.assess_with_selection(
        study, make_selection_mode(mode).predicate, *kpi_id, *change_bin);
  }

  const bool explain = args.contains("explain");
  std::printf("%s\n", core::format_assessment(a, topo, explain).c_str());

  // Baselines, for context.
  const core::StudyOnlyAnalyzer so;
  const core::DiDAnalyzer did;
  std::printf("baseline reads (first study element):\n");
  const core::ElementWindows w =
      assessor.windows_for(study[0], a.control_group, *kpi_id, *change_bin);
  std::printf("  study-only: %s, DiD: %s\n",
              to_string(so.assess(w, *kpi_id).verdict),
              to_string(did.assess(w, *kpi_id).verdict));
  obs_session.finish();
  return 0;
}

// --shards N (else LITMUS_SHARDS, else 1) runs the batch through the
// sharded driver: deterministic element partition, shard-local panel
// caches, per-shard run artifacts. Results are bit-identical to an
// unsharded run over the same inputs.
std::size_t resolve_shards(const std::map<std::string, std::string>& args) {
  std::string spec;
  if (const auto it = args.find("shards"); it != args.end())
    spec = it->second;
  else if (const char* env = std::getenv("LITMUS_SHARDS"))
    spec = env;
  if (spec.empty()) return 1;
  const auto v = io::parse_int(spec);
  if (!v || *v <= 0) throw std::runtime_error("bad --shards: " + spec);
  return static_cast<std::size_t>(*v);
}

int batch(const std::map<std::string, std::string>& args) {
  const auto need = [&](const char* key) -> const std::string& {
    const auto it = args.find(key);
    if (it == args.end())
      throw std::runtime_error(std::string("missing --") + key);
    return it->second;
  };

  apply_threads_flag(args);  // validate before the expensive loads
  apply_panel_cache_flag(args);
  apply_simd_flags(args);
  const std::size_t n_shards = resolve_shards(args);

  ObsSession obs_session("batch", args);

  std::ifstream topo_in(need("topology"));
  if (!topo_in) throw std::runtime_error("cannot open topology file");
  const net::Topology topo = io::load_topology_csv(topo_in);
  obs_session.add_input(need("topology"));

  // Series source: a snapshot mapped in place (--series-snap, the
  // million-element path — series stay on shared read-only pages), a CSV
  // served through the mapped snapshot cache (--store mmap), or the heap
  // store (--store heap, the default for --series). All three providers
  // produce bit-identical windows.
  std::shared_ptr<const io::MappedStore> mapped;
  io::SeriesStore heap_store;  // unused on the mapped paths
  core::SeriesProvider provider;
  const std::string store_mode =
      args.contains("store") ? args.at("store") : "";
  if (const auto it = args.find("series-snap"); it != args.end()) {
    if (args.contains("series"))
      throw std::runtime_error("--series and --series-snap are exclusive");
    std::string why;
    mapped = io::MappedStore::open(it->second, &why);
    if (!mapped)
      throw std::runtime_error("cannot map snapshot " + it->second + ": " +
                               why);
    provider = mapped->provider();
    obs_session.add_input(it->second);
    obs_session.note("ingest.series", "mapped-snapshot");
    std::printf("mapped %zu series (%.1f MiB) from %s in %.0f ms\n",
                mapped->size(),
                static_cast<double>(mapped->bytes_mapped()) / (1 << 20),
                it->second.c_str(), mapped->open_stats().seconds * 1e3);
  } else if (store_mode == "mmap") {
    io::IngestOptions opts;
    opts.snapshot_dir = resolve_snapshot_dir(args);
    if (opts.snapshot_dir.empty())
      throw std::runtime_error(
          "--store mmap needs --snapshot-cache DIR (or "
          "LITMUS_SNAPSHOT_CACHE)");
    const io::MappedIngest mi =
        io::ingest_series_file_mapped(need("series"), opts);
    mapped = mi.store;
    provider = mapped->provider();
    obs_session.add_input(need("series"), mi.report.bytes,
                          mi.report.fingerprint);
    obs_session.note("ingest.series", mi.report.from_snapshot
                                          ? "snapshot-mapped"
                                          : "parsed+snapshot-mapped");
    std::printf("mapped %zu series (%.1f MiB, %s)\n", mapped->size(),
                static_cast<double>(mapped->bytes_mapped()) / (1 << 20),
                mi.report.from_snapshot ? "snapshot hit" : "parsed once");
  } else if (store_mode.empty() || store_mode == "heap") {
    load_series_input(need("series"), heap_store, args, obs_session);
    provider = heap_store.provider();
  } else {
    throw std::runtime_error("unknown --store mode: " + store_mode +
                             " (want heap|mmap)");
  }

  std::ifstream changes_in(need("changes"));
  if (!changes_in) throw std::runtime_error("cannot open changes file");
  chg::ChangeLog log;
  const std::size_t n = io::load_changes_csv(changes_in, log);
  obs_session.add_input(need("changes"));
  std::printf("loaded %zu change record(s)\n", n);

  core::BatchConfig config;
  if (const auto it = args.find("seed"); it != args.end()) {
    const auto v = io::parse_int(it->second);
    if (!v || *v < 0) throw std::runtime_error("bad --seed: " + it->second);
    config.assessment.regression.seed = static_cast<std::uint64_t>(*v);
  }
  const auto bins_flag = [&](const char* key, std::size_t& out) {
    const auto it = args.find(key);
    if (it == args.end()) return;
    const auto v = io::parse_int(it->second);
    if (!v || *v <= 0)
      throw std::runtime_error(std::string("bad --") + key + ": " +
                               it->second);
    out = static_cast<std::size_t>(*v);
  };
  bins_flag("before-bins", config.assessment.before_bins);
  bins_flag("after-bins", config.assessment.after_bins);
  std::size_t iterations = config.assessment.regression.n_iterations;
  bins_flag("iterations", iterations);
  config.assessment.regression.n_iterations = iterations;
  apply_adaptive_flags(args, config.assessment.regression);
  if (const auto it = args.find("select"); it != args.end()) {
    SelectionMode mode = make_selection_mode(it->second);
    config.predicate = std::move(mode.predicate);
    config.group_key = std::move(mode.group_key);
  }

  // Live shard progress for /status while the sweep runs.
  const auto live_shard = std::make_shared<std::atomic<long long>>(-1);
  if (n_shards > 1) {
    const auto total_shards = n_shards;
    obs_session.set_status_fn([live_shard, total_shards](obs::JsonWriter& w) {
      w.key("batch").begin_object();
      w.member("shards", static_cast<std::uint64_t>(total_shards))
          .member("current_shard",
                  static_cast<std::int64_t>(live_shard->load()));
      w.end_object();
    });
  }

  obs_session.set_seed(config.assessment.regression.seed);
  obs_session.start();

  if (n_shards <= 1) {
    const core::BatchReport report =
        core::assess_change_log(log, topo, provider, config);
    std::printf("%s", core::format_batch_report(report, topo).c_str());
    obs_session.finish();
    return 0;
  }

  // Sharded run: when the run is persisted, each shard gets its own run
  // directory (shard-NN/run_manifest.json + events.jsonl). The driver
  // swaps the process event sink to the shard's log in on_start and back
  // in on_finish — both run on this thread while no worker is in flight —
  // so assessment events land with their shard while run_start/run_end
  // stay in the parent stream. diff-runs stitches shard-*/events.jsonl
  // back into one verdict set.
  std::unique_ptr<obs::EventLog> shard_log;
  obs::EventLog* parent_log = nullptr;
  core::ShardCallbacks cb;
  cb.on_start = [&](std::size_t s, std::size_t records) {
    live_shard->store(static_cast<long long>(s));
    if (obs_session.run_dir().empty()) return;
    char name[16];
    std::snprintf(name, sizeof name, "shard-%02zu", s);
    const std::string sdir = obs_session.run_dir() + "/" + name;
    obs_session.write_shard_manifest(sdir, s, records);
    shard_log = obs::EventLog::open(sdir + "/events.jsonl");
    parent_log = obs::events();
    obs::set_events(shard_log.get());
    shard_log->emit(obs::EventType::kRunStart, [&](obs::JsonWriter& w) {
      w.member("shard", static_cast<std::uint64_t>(s))
          .member("records", static_cast<std::uint64_t>(records));
    });
  };
  cb.on_finish = [&](const core::ShardSummary& sum) {
    if (shard_log) {
      shard_log->emit(obs::EventType::kRunEnd, [&](obs::JsonWriter& w) {
        w.member("shard", static_cast<std::uint64_t>(sum.shard))
            .member("records", static_cast<std::uint64_t>(sum.records))
            .member("wall_s", sum.seconds)
            .member("cache_hits", sum.cache.hits)
            .member("cache_misses", sum.cache.misses)
            .member("status", "ok");
      });
      obs::set_events(parent_log);
      shard_log.reset();  // flush + close
      parent_log = nullptr;
    }
  };

  const core::ShardedBatchReport sharded =
      core::assess_change_log_sharded(log, topo, provider, n_shards, config,
                                      cb);
  std::printf("%s", core::format_batch_report(sharded.merged, topo).c_str());
  std::printf("shards: %zu\n", sharded.shards.size());
  const bool adaptive = config.assessment.regression.adaptive_sampling;
  std::printf("shard  records  seconds  panel-cache hit/miss%s\n",
              adaptive ? "  early-stops  iters-used/budget" : "");
  for (const auto& s : sharded.shards) {
    std::printf("%5zu  %7zu  %7.2f  %llu/%llu", s.shard, s.records,
                s.seconds, static_cast<unsigned long long>(s.cache.hits),
                static_cast<unsigned long long>(s.cache.misses));
    if (adaptive)
      std::printf("  %11zu  %llu/%llu", s.adaptive_stopped_early,
                  static_cast<unsigned long long>(s.adaptive_iterations_used),
                  static_cast<unsigned long long>(
                      s.adaptive_iterations_budget));
    std::printf("\n");
  }
  obs_session.finish();
  return 0;
}

// gen-corpus: stream a large synthetic corpus (topology.csv, changes.csv,
// series.litmus-snap) to disk with bounded memory — the workload generator
// for the mapped-store scale path (DESIGN.md §15).
int gen_corpus(const std::string& dir,
               const std::map<std::string, std::string>& args) {
  sim::ScaleCorpusConfig cfg;
  const auto size_flag = [&](const char* key, std::size_t& out) {
    const auto it = args.find(key);
    if (it == args.end()) return;
    const auto v = io::parse_int(it->second);
    if (!v || *v <= 0)
      throw std::runtime_error(std::string("bad --") + key + ": " +
                               it->second);
    out = static_cast<std::size_t>(*v);
  };
  size_flag("elements", cfg.elements);
  size_flag("cluster-size", cfg.cluster_size);
  size_flag("change-stride", cfg.change_stride);
  size_flag("improve-stride", cfg.improve_stride);
  size_flag("before-bins", cfg.before_bins);
  size_flag("after-bins", cfg.after_bins);
  if (const auto it = args.find("shift-sigma"); it != args.end()) {
    const auto v = io::parse_double(it->second);
    if (!v) throw std::runtime_error("bad --shift-sigma: " + it->second);
    cfg.shift_sigma = *v;
  }
  if (const auto it = args.find("seed"); it != args.end()) {
    const auto v = io::parse_int(it->second);
    if (!v || *v < 0) throw std::runtime_error("bad --seed: " + it->second);
    cfg.seed = static_cast<std::uint64_t>(*v);
  }

  const std::uint64_t t0 = obs::now_ns();
  const sim::ScaleCorpusReport rep = sim::write_scale_corpus(dir, cfg);
  const double secs = static_cast<double>(obs::now_ns() - t0) / 1e9;
  std::printf("wrote %s: %zu elements (%zu NodeBs in %zu clusters), "
              "%zu change(s), %llu series (%.1f MiB payload) in %.1fs\n",
              dir.c_str(), rep.elements, rep.nodebs, rep.clusters,
              rep.changes, static_cast<unsigned long long>(rep.series),
              static_cast<double>(rep.snapshot_payload_bytes) / (1 << 20),
              secs);
  std::printf("try: litmus_cli batch --topology %s/topology.csv "
              "--series-snap %s/series.litmus-snap --changes %s/changes.csv "
              "--select zip --before-bins %zu --after-bins %zu --shards 4\n",
              dir.c_str(), dir.c_str(), dir.c_str(), cfg.before_bins,
              cfg.after_bins);
  return 0;
}

// monitor: the paper's "confirm over multiple time-intervals" workflow as
// a long-running loop — replays stored bins through ChangeMonitor state
// machines at --step-hours granularity, printing each completed window.
// This is the daemon mode the live observability plane is built for:
// --serve exposes per-element monitor state on /status while the loop
// runs, --tick-ms slows the replay to wall-clock time, and --linger-ms
// keeps the plane up after the last heartbeat so /readyz demonstrably
// flips to 503 on staleness.
int monitor_cmd(const std::map<std::string, std::string>& args) {
  const auto need = [&](const char* key) -> const std::string& {
    const auto it = args.find(key);
    if (it == args.end())
      throw std::runtime_error(std::string("missing --") + key);
    return it->second;
  };

  apply_threads_flag(args);
  apply_panel_cache_flag(args);
  apply_simd_flags(args);

  ObsSession obs_session("monitor", args);

  std::ifstream topo_in(need("topology"));
  if (!topo_in) throw std::runtime_error("cannot open topology file");
  const net::Topology topo = io::load_topology_csv(topo_in);
  obs_session.add_input(need("topology"));

  io::SeriesStore store;
  load_series_input(need("series"), store, args, obs_session);

  const std::vector<net::ElementId> study = parse_ids(need("study"));
  const auto kpi_id = kpi::parse_kpi(need("kpi"));
  if (!kpi_id) throw std::runtime_error("unknown KPI name");
  const auto change_bin = io::parse_int(need("change-bin"));
  if (!change_bin) throw std::runtime_error("bad --change-bin");

  core::MonitorConfig mcfg;
  if (const auto it = args.find("before-days"); it != args.end())
    mcfg.before_bins = static_cast<std::size_t>(std::stoi(it->second)) * 24;
  if (const auto it = args.find("window-days"); it != args.end())
    mcfg.window_bins = static_cast<std::size_t>(std::stoi(it->second)) * 24;
  if (const auto it = args.find("step-hours"); it != args.end())
    mcfg.step_bins = static_cast<std::size_t>(std::stoi(it->second));
  if (const auto it = args.find("confirm"); it != args.end())
    mcfg.confirm_windows = static_cast<std::size_t>(std::stoi(it->second));
  if (const auto it = args.find("seed"); it != args.end()) {
    const auto v = io::parse_int(it->second);
    if (!v || *v < 0) throw std::runtime_error("bad --seed: " + it->second);
    mcfg.regression.seed = static_cast<std::uint64_t>(*v);
  }
  apply_adaptive_flags(args, mcfg.regression);

  const auto parse_ms = [&](const char* key) -> std::uint64_t {
    const auto it = args.find(key);
    if (it == args.end()) return 0;
    const auto v = io::parse_int(it->second);
    if (!v || *v < 0)
      throw std::runtime_error(std::string("bad --") + key + ": " +
                               it->second);
    return static_cast<std::uint64_t>(*v);
  };
  const std::uint64_t tick_ms = parse_ms("tick-ms");
  const std::uint64_t linger_ms = parse_ms("linger-ms");

  std::vector<net::ElementId> controls;
  if (const auto it = args.find("controls"); it != args.end()) {
    controls = parse_ids(it->second);
  } else {
    std::string mode = "region";
    if (const auto sel = args.find("select"); sel != args.end())
      mode = sel->second;
    const core::SelectionResult sel = core::select_control_group(
        topo, study, make_selection_mode(mode).predicate);
    if (!sel.meets_min_size)
      throw std::runtime_error(
          "control selection too small; pass --controls explicitly");
    controls = sel.controls;
    obs_session.note("monitor.controls_selected",
                     std::to_string(controls.size()));
  }

  // Data horizon: the last bin any study series reaches for this KPI.
  std::int64_t horizon = *change_bin;
  for (const auto e : study)
    if (store.contains(e, *kpi_id))
      horizon = std::max(horizon, store.get(e, *kpi_id).end_bin());
  if (horizon == *change_bin)
    throw std::runtime_error("no stored series for the study/KPI pair");

  // Live monitor state shared with the /status handler (server thread).
  struct LiveRow {
    std::uint32_t element;
    const char* state;
    std::int64_t up_to;
    std::uint64_t windows;
  };
  const auto live_mu = std::make_shared<std::mutex>();
  const auto live = std::make_shared<std::vector<LiveRow>>();
  for (const auto e : study)
    live->push_back({e.value, core::to_string(core::MonitorState::kWarmup),
                     *change_bin, 0});
  const std::string kpi_name = need("kpi");
  obs_session.set_status_fn([live_mu, live, kpi_name](obs::JsonWriter& w) {
    w.key("monitors").begin_array();
    const std::lock_guard<std::mutex> lock(*live_mu);
    for (const auto& row : *live) {
      w.begin_object();
      w.member("element", static_cast<std::uint64_t>(row.element))
          .member("kpi", kpi_name)
          .member("state", row.state)
          .member("up_to_bin", row.up_to)
          .member("windows", row.windows);
      w.end_object();
    }
    w.end_array();
  });

  obs_session.set_seed(mcfg.regression.seed);
  obs_session.start();

  std::vector<core::ChangeMonitor> monitors;
  monitors.reserve(study.size());
  for (const auto e : study)
    monitors.emplace_back(store.provider(), e, controls, *kpi_id,
                          *change_bin, mcfg);

  std::printf("monitoring %zu element(s) vs %zu control(s), "
              "bins %lld..%lld (step %zuh)\n",
              study.size(), controls.size(),
              static_cast<long long>(*change_bin),
              static_cast<long long>(horizon), mcfg.step_bins);

  // Replay clock: a daemon waking up once per step, but over recorded
  // bins; --tick-ms stretches it toward real time for demos and CI.
  std::int64_t now_bin =
      *change_bin + static_cast<std::int64_t>(mcfg.window_bins);
  while (true) {
    if (now_bin > horizon) now_bin = horizon;
    for (std::size_t i = 0; i < monitors.size(); ++i) {
      const auto readings = monitors[i].advance(now_bin);
      for (const auto& r : readings)
        std::printf("bin %lld  element %u  verdict=%s  state=%s\n",
                    static_cast<long long>(r.up_to_bin), study[i].value,
                    to_string(r.outcome.verdict),
                    core::to_string(r.state));
      const std::lock_guard<std::mutex> lock(*live_mu);
      auto& row = (*live)[i];
      row.state = core::to_string(monitors[i].state());
      if (!readings.empty()) row.up_to = readings.back().up_to_bin;
      row.windows = monitors[i].history().size();
    }
    std::fflush(stdout);
    if (now_bin >= horizon) break;
    if (tick_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(tick_ms));
    now_bin += static_cast<std::int64_t>(mcfg.step_bins);
  }

  for (std::size_t i = 0; i < monitors.size(); ++i)
    std::printf("element %u final state: %s (%zu window(s))\n",
                study[i].value, core::to_string(monitors[i].state()),
                monitors[i].history().size());

  // Heartbeats have stopped; lingering keeps the plane answering so a
  // probe can watch /readyz flip to 503 once the watermark goes stale.
  if (linger_ms > 0 && obs_session.serving()) {
    std::printf("lingering %llu ms before shutdown\n",
                static_cast<unsigned long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }

  obs_session.finish();
  return 0;
}

// diff-runs: load two persisted run directories and report drift.
// Exit codes: 0 equivalent, 3 drift (errors throw -> 1).
int diff_runs_cmd(const std::string& dir_a, const std::string& dir_b,
                  const std::map<std::string, std::string>& args) {
  obs::DiffThresholds thresholds;
  if (const auto it = args.find("max-flips"); it != args.end()) {
    const auto v = io::parse_int(it->second);
    if (!v || *v < 0)
      throw std::runtime_error("bad --max-flips: " + it->second);
    thresholds.max_verdict_flips = static_cast<std::size_t>(*v);
  }
  if (const auto it = args.find("metric-tolerance"); it != args.end()) {
    const auto v = io::parse_double(it->second);
    if (!v || *v < 0)
      throw std::runtime_error("bad --metric-tolerance: " + it->second);
    thresholds.metric_rel_tolerance = *v;
  }
  if (const auto it = args.find("wall-tolerance"); it != args.end()) {
    const auto v = io::parse_double(it->second);
    if (!v || *v < 0)
      throw std::runtime_error("bad --wall-tolerance: " + it->second);
    thresholds.wall_rel_tolerance = *v;
  }
  thresholds.ignore_manifest = args.contains("ignore-manifest");

  const obs::RunData a = obs::load_run_dir(dir_a);
  const obs::RunData b = obs::load_run_dir(dir_b);
  const obs::RunDiffReport report = obs::diff_runs(a, b, thresholds);
  std::printf("%s", obs::format_run_diff(report, a, b).c_str());
  return report.drift ? 3 : 0;
}

// profile: summarize a trace file (or a run directory holding one) into a
// per-stage table, no browser required.
/// Prints the per-shard summary table of a sharded run directory (from
/// each shard-NN/events.jsonl run_end event). Returns false when the
/// directory holds no shard sub-runs.
bool print_shard_summaries(const std::string& run_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> shard_dirs;
  for (const auto& entry : fs::directory_iterator(run_dir, ec)) {
    if (ec) break;
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("shard-", 0) == 0)
      shard_dirs.push_back(entry.path().string());
  }
  std::sort(shard_dirs.begin(), shard_dirs.end());
  if (shard_dirs.empty()) return false;
  std::printf("shards:\n  dir        records  seconds  "
              "panel-cache hit/miss\n");
  for (const std::string& sd : shard_dirs) {
    std::ifstream ev(sd + "/events.jsonl");
    std::string line, last_end;
    while (std::getline(ev, line))
      if (line.find("\"type\":\"run_end\"") != std::string::npos)
        last_end = line;
    const std::string label = fs::path(sd).filename().string();
    if (last_end.empty()) {
      std::printf("  %-9s  (no run_end event)\n", label.c_str());
      continue;
    }
    const auto doc = obs::parse_json(last_end, nullptr);
    if (!doc) continue;
    std::printf("  %-9s  %7.0f  %7.2f  %.0f/%.0f\n", label.c_str(),
                doc->member_number("records", 0),
                doc->member_number("wall_s", 0),
                doc->member_number("cache_hits", 0),
                doc->member_number("cache_misses", 0));
  }
  return true;
}

int profile_cmd(const std::string& target,
                const std::map<std::string, std::string>& args) {
  namespace fs = std::filesystem;
  std::string path = target;
  std::string run_dir;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    run_dir = path;
    // A run directory: prefer the chrome trace, fall back to the span dump.
    std::string found;
    for (const char* candidate : {"profile.json", "trace.json"}) {
      const std::string p = path + "/" + candidate;
      if (fs::exists(p, ec)) {
        found = p;
        break;
      }
    }
    if (found.empty()) {
      // A sharded run dir is still summarizable without any trace: the
      // shard-NN event streams carry records/wall/cache per shard.
      std::printf("%s\n", run_dir.c_str());
      if (print_shard_summaries(run_dir)) return 0;
      throw std::runtime_error(
          "no profile.json or trace.json in directory: " + path);
    }
    path = found;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string error;
  const auto doc = obs::parse_json(buf.str(), &error);
  if (!doc) throw std::runtime_error(path + ": " + error);
  const auto parsed = obs::parse_trace_events(*doc, &error);
  if (!parsed) throw std::runtime_error(path + ": " + error);

  std::size_t top_n = 10;
  if (const auto it = args.find("top"); it != args.end()) {
    const auto v = io::parse_int(it->second);
    if (!v || *v < 0) throw std::runtime_error("bad --top: " + it->second);
    top_n = static_cast<std::size_t>(*v);
  }

  std::printf("%s", path.c_str());
  if (const obs::JsonValue* other = doc->find("otherData")) {
    const auto dropped =
        static_cast<std::uint64_t>(other->member_number("dropped_spans", 0));
    if (dropped > 0)
      std::printf(" (%llu span(s) dropped at record time)",
                  static_cast<unsigned long long>(dropped));
  }
  std::printf("\n%s",
              obs::format_profile_report(
                  obs::summarize_trace(parsed->events, top_n))
                  .c_str());
  if (!parsed->thread_names.empty()) {
    std::printf("threads:\n");
    for (const auto& [tid, name] : parsed->thread_names)
      std::printf("  %3u  %s\n", tid, name.c_str());
  }

  // A sharded run directory: summarize each shard-NN/ sub-run from its
  // run_end event (records, wall, shard-local panel-cache outcome).
  if (!run_dir.empty()) (void)print_shard_summaries(run_dir);
  return 0;
}

}  // namespace

// Parses "--flag value" pairs (and valueless boolean flags) starting at
// argv[first], rejecting anything outside the per-command whitelist so a
// typo fails loudly instead of being silently ignored.
int parse_flags(int argc, char** argv, const std::set<std::string>& valued,
                const std::set<std::string>& boolean,
                std::map<std::string, std::string>& out, int first = 2) {
  for (int i = first; i < argc;) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return usage();
    }
    const std::string name = argv[i] + 2;
    if (boolean.contains(name)) {
      out[name] = "1";
      ++i;
      continue;
    }
    if (!valued.contains(name)) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      return usage();
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for --%s\n", name.c_str());
      return usage();
    }
    out[name] = argv[i + 1];
    i += 2;
  }
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
      std::printf("litmus_cli %s\n", obs::kLitmusVersion);
      std::printf("simd: %s\n", ts::simd::describe().c_str());
      return 0;
    }
    if (cmd == "--help" || cmd == "help") {
      usage();
      return 0;
    }
    if (cmd == "export-demo") {
      if (argc != 3) return usage();
      return export_demo(argv[2]);
    }
    if (cmd == "gen-corpus") {
      if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
        std::fprintf(stderr, "gen-corpus needs an output directory\n");
        return usage();
      }
      static const std::set<std::string> kValued = {
          "elements",     "cluster-size", "change-stride",
          "improve-stride", "before-bins", "after-bins",
          "shift-sigma",  "seed"};
      std::map<std::string, std::string> args;
      if (const int rc = parse_flags(argc, argv, kValued, {}, args,
                                     /*first=*/3);
          rc != 0)
        return rc;
      return gen_corpus(argv[2], args);
    }
    if (cmd == "assess" || cmd == "batch") {
      static const std::set<std::string> kSharedFlags = {
          "metrics-json",   "trace-json",     "threads",
          "seed",           "events-jsonl",   "panel-cache-mb",
          "snapshot-cache", "profile-json",   "profile-sample",
          "simd",           "serve",          "ready-stale-ms",
          "adaptive-sampling", "min-iterations", "stability-rounds"};
      std::set<std::string> valued = kSharedFlags;
      std::set<std::string> boolean = {"fast-math-kernels"};
      if (cmd == "assess") {
        valued.insert({"topology", "series", "study", "kpi", "change-bin",
                       "controls", "select", "before-days", "after-days"});
        boolean.insert("explain");
      } else {
        valued.insert({"topology", "series", "series-snap", "changes",
                       "select", "store", "shards", "before-bins",
                       "after-bins", "iterations"});
      }
      std::map<std::string, std::string> args;
      if (const int rc = parse_flags(argc, argv, valued, boolean, args);
          rc != 0)
        return rc;
      return cmd == "assess" ? assess(args) : batch(args);
    }
    if (cmd == "monitor") {
      static const std::set<std::string> kValued = {
          "topology",       "series",       "study",
          "kpi",            "change-bin",   "controls",
          "select",         "before-days",  "window-days",
          "step-hours",     "confirm",      "tick-ms",
          "linger-ms",      "metrics-json", "trace-json",
          "threads",        "seed",         "events-jsonl",
          "panel-cache-mb", "snapshot-cache", "profile-json",
          "profile-sample", "simd",         "serve",
          "ready-stale-ms", "adaptive-sampling", "min-iterations",
          "stability-rounds"};
      static const std::set<std::string> kBoolean = {"fast-math-kernels"};
      std::map<std::string, std::string> args;
      if (const int rc = parse_flags(argc, argv, kValued, kBoolean, args);
          rc != 0)
        return rc;
      return monitor_cmd(args);
    }
    if (cmd == "profile") {
      if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
        std::fprintf(stderr,
                     "profile needs a run directory or trace file\n");
        return usage();
      }
      static const std::set<std::string> kValued = {"top"};
      std::map<std::string, std::string> args;
      if (const int rc = parse_flags(argc, argv, kValued, {}, args,
                                     /*first=*/3);
          rc != 0)
        return rc;
      return profile_cmd(argv[2], args);
    }
    if (cmd == "diff-runs") {
      if (argc < 4 || std::strncmp(argv[2], "--", 2) == 0 ||
          std::strncmp(argv[3], "--", 2) == 0) {
        std::fprintf(stderr, "diff-runs needs two run directories\n");
        return usage();
      }
      static const std::set<std::string> kValued = {
          "max-flips", "metric-tolerance", "wall-tolerance"};
      static const std::set<std::string> kBoolean = {"ignore-manifest"};
      std::map<std::string, std::string> args;
      if (const int rc = parse_flags(argc, argv, kValued, kBoolean, args,
                                     /*first=*/4);
          rc != 0)
        return rc;
      return diff_runs_cmd(argv[2], argv[3], args);
    }
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
