#include "cellnet/builder.h"

#include <gtest/gtest.h>

namespace litmus::net {
namespace {

TEST(Builder, DeterministicForSameSeed) {
  BuildSpec spec;
  spec.seed = 42;
  const Topology a = NetworkBuilder(spec).build();
  const Topology b = NetworkBuilder(spec).build();
  ASSERT_EQ(a.size(), b.size());
  for (const auto id : a.all()) {
    const auto& ea = a.get(id);
    const auto& eb = b.get(id);
    EXPECT_EQ(ea.name, eb.name);
    EXPECT_DOUBLE_EQ(ea.location.lat_deg, eb.location.lat_deg);
    EXPECT_EQ(ea.config.software, eb.config.software);
    EXPECT_EQ(ea.config.son_enabled, eb.config.son_enabled);
  }
}

TEST(Builder, DifferentSeedsDiffer) {
  BuildSpec a_spec, b_spec;
  a_spec.seed = 1;
  b_spec.seed = 2;
  const Topology a = NetworkBuilder(a_spec).build();
  const Topology b = NetworkBuilder(b_spec).build();
  ASSERT_EQ(a.size(), b.size());  // same structure...
  bool any_diff = false;          // ...different details
  for (const auto id : a.all())
    if (a.get(id).location.lat_deg != b.get(id).location.lat_deg)
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Builder, ExpectedElementCounts) {
  BuildSpec spec;
  spec.regions = {Region::kNortheast};
  spec.markets_per_region = 2;
  spec.mscs_per_region = 2;
  spec.rncs_per_msc = 3;
  spec.nodebs_per_rnc = 4;
  spec.bscs_per_region = 1;
  spec.bts_per_bsc = 5;
  spec.enodebs_per_market = 3;
  const Topology t = NetworkBuilder(spec).build();
  EXPECT_EQ(t.of_kind(ElementKind::kMsc).size(), 2u);
  EXPECT_EQ(t.of_kind(ElementKind::kRnc).size(), 6u);
  EXPECT_EQ(t.of_kind(ElementKind::kNodeB).size(), 24u);
  EXPECT_EQ(t.of_kind(ElementKind::kBsc).size(), 1u);
  EXPECT_EQ(t.of_kind(ElementKind::kBts).size(), 5u);
  EXPECT_EQ(t.of_kind(ElementKind::kEnodeB).size(), 6u);
  EXPECT_EQ(t.of_kind(ElementKind::kMme).size(), 1u);
  EXPECT_EQ(t.of_kind(ElementKind::kSgw).size(), 1u);
  EXPECT_EQ(t.of_kind(ElementKind::kPgw).size(), 1u);
}

TEST(Builder, EveryTowerHasProperAncestry) {
  BuildSpec default_spec;
  const Topology t = NetworkBuilder(default_spec).build();
  for (const auto id : t.of_kind(ElementKind::kNodeB)) {
    EXPECT_TRUE(t.ancestor_of_kind(id, ElementKind::kRnc).has_value());
    EXPECT_TRUE(t.ancestor_of_kind(id, ElementKind::kMsc).has_value());
  }
  for (const auto id : t.of_kind(ElementKind::kBts))
    EXPECT_TRUE(t.ancestor_of_kind(id, ElementKind::kBsc).has_value());
  for (const auto id : t.of_kind(ElementKind::kEnodeB))
    EXPECT_TRUE(t.ancestor_of_kind(id, ElementKind::kMme).has_value());
}

TEST(Builder, TechnologiesMatchKinds) {
  BuildSpec default_spec;
  const Topology t = NetworkBuilder(default_spec).build();
  for (const auto id : t.all()) {
    const auto& e = t.get(id);
    if (e.kind == ElementKind::kNodeB || e.kind == ElementKind::kRnc) {
      EXPECT_EQ(e.technology, Technology::kUmts);
    }
    if (e.kind == ElementKind::kBts || e.kind == ElementKind::kBsc) {
      EXPECT_EQ(e.technology, Technology::kGsm);
    }
    if (e.kind == ElementKind::kEnodeB || e.kind == ElementKind::kMme) {
      EXPECT_EQ(e.technology, Technology::kLte);
    }
  }
}

TEST(Builder, RegionsAssignedAsRequested) {
  BuildSpec spec;
  spec.regions = {Region::kWest, Region::kSoutheast};
  const Topology t = NetworkBuilder(spec).build();
  EXPECT_FALSE(t.in_region(Region::kWest).empty());
  EXPECT_FALSE(t.in_region(Region::kSoutheast).empty());
  EXPECT_TRUE(t.in_region(Region::kMidwest).empty());
}

TEST(Builder, NeighborLinksOnlySameTechnologyWithinRadius) {
  BuildSpec default_spec;
  const Topology t = NetworkBuilder(default_spec).build();
  for (const auto id : t.all()) {
    const auto& e = t.get(id);
    for (const auto n : t.neighbors_of(id)) {
      EXPECT_EQ(t.get(n).technology, e.technology);
      EXPECT_LE(haversine_km(e.location, t.get(n).location), 8.0 + 1e-9);
    }
  }
}

TEST(Builder, SonFractionRoughlyRespected) {
  BuildSpec spec;
  spec.son_fraction = 0.5;
  spec.nodebs_per_rnc = 20;
  const Topology t = NetworkBuilder(spec).build();
  std::size_t towers = 0, son = 0;
  for (const auto id : t.all()) {
    if (!is_tower(t.get(id).kind)) continue;
    ++towers;
    if (t.get(id).config.son_enabled) ++son;
  }
  const double frac = static_cast<double>(son) / static_cast<double>(towers);
  EXPECT_NEAR(frac, 0.5, 0.15);
}

TEST(Builder, TowersHaveAntennaConfig) {
  BuildSpec default_spec;
  const Topology t = NetworkBuilder(default_spec).build();
  for (const auto id : t.of_kind(ElementKind::kNodeB)) {
    const auto& a = t.get(id).config.antenna;
    EXPECT_GE(a.tilt_deg, 0.0);
    EXPECT_LE(a.tilt_deg, 8.0);
    EXPECT_GE(a.tx_power_dbm, 40.0);
    EXPECT_LE(a.tx_power_dbm, 46.0);
  }
}

TEST(Builder, SmallRegionHelper) {
  const Topology t = build_small_region(Region::kMidwest, 5, 4, 6);
  EXPECT_EQ(t.of_kind(ElementKind::kRnc).size(), 4u);
  EXPECT_EQ(t.of_kind(ElementKind::kNodeB).size(), 24u);
  EXPECT_TRUE(t.in_region(Region::kNortheast).empty());
}

TEST(Builder, IdsAreDenseFromOne) {
  BuildSpec default_spec;
  const Topology t = NetworkBuilder(default_spec).build();
  std::uint32_t expected = 1;
  for (const auto id : t.all()) EXPECT_EQ(id.value, expected++);
}

}  // namespace
}  // namespace litmus::net
