#include "cellnet/config.h"

#include <gtest/gtest.h>

namespace litmus::net {
namespace {

TEST(SoftwareVersion, ToStringFormat) {
  EXPECT_EQ((SoftwareVersion{5, 2, 1}).to_string(), "5.2.1");
  EXPECT_EQ((SoftwareVersion{}).to_string(), "0.0.0");
}

TEST(SoftwareVersion, ParseFull) {
  const auto v = SoftwareVersion::parse("7.10.3");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->major, 7);
  EXPECT_EQ(v->minor, 10);
  EXPECT_EQ(v->patch, 3);
}

TEST(SoftwareVersion, ParseTwoComponents) {
  const auto v = SoftwareVersion::parse("3.4");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->patch, 0);
}

TEST(SoftwareVersion, ParseRejectsGarbage) {
  EXPECT_FALSE(SoftwareVersion::parse("").has_value());
  EXPECT_FALSE(SoftwareVersion::parse("abc").has_value());
  EXPECT_FALSE(SoftwareVersion::parse("1.").has_value());
  EXPECT_FALSE(SoftwareVersion::parse("1.2.3.4").has_value());
  EXPECT_FALSE(SoftwareVersion::parse("1.2.x").has_value());
}

TEST(SoftwareVersion, TotalOrder) {
  EXPECT_LT((SoftwareVersion{1, 9, 9}), (SoftwareVersion{2, 0, 0}));
  EXPECT_LT((SoftwareVersion{2, 1, 0}), (SoftwareVersion{2, 2, 0}));
  EXPECT_LT((SoftwareVersion{2, 2, 1}), (SoftwareVersion{2, 2, 2}));
  EXPECT_EQ((SoftwareVersion{2, 2, 2}), (SoftwareVersion{2, 2, 2}));
}

TEST(SoftwareVersion, ParseToStringRoundTrip) {
  const SoftwareVersion v{12, 0, 7};
  EXPECT_EQ(SoftwareVersion::parse(v.to_string()), v);
}

TEST(ConfigSnapshot, EqualityIsMemberwise) {
  ConfigSnapshot a, b;
  EXPECT_EQ(a, b);
  b.antenna.tilt_deg = 4.0;
  EXPECT_NE(a, b);
  b = a;
  b.gold.radio_link_failure_timer_ms = 9999;
  EXPECT_NE(a, b);
  b = a;
  b.son_enabled = true;
  EXPECT_NE(a, b);
}

TEST(GoldStandardParams, DefaultsAreSane) {
  const GoldStandardParams g;
  EXPECT_GT(g.radio_link_failure_timer_ms, 0);
  EXPECT_GT(g.handover_time_to_trigger_ms, 0);
  EXPECT_LT(g.access_threshold_dbm, 0);
}

}  // namespace
}  // namespace litmus::net
