#include "cellnet/topology.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace litmus::net {
namespace {

NetworkElement elem(std::uint32_t id, ElementKind kind,
                    ElementId parent = kInvalidElement,
                    GeoPoint loc = {40.0, -74.0}) {
  NetworkElement e;
  e.id = ElementId{id};
  e.kind = kind;
  e.technology = Technology::kUmts;
  e.name = "e" + std::to_string(id);
  e.location = loc;
  e.zip = ZipCode{10000 + id % 3};
  e.region = Region::kNortheast;
  e.parent = parent;
  return e;
}

// MSC(1) -> RNC(2) -> NodeB(3,4); RNC(5) -> NodeB(6). 3-6 are neighbors of
// each other where linked.
Topology small_topo() {
  Topology t;
  t.add(elem(1, ElementKind::kMsc));
  t.add(elem(2, ElementKind::kRnc, ElementId{1}));
  t.add(elem(3, ElementKind::kNodeB, ElementId{2}, {40.0, -74.0}));
  t.add(elem(4, ElementKind::kNodeB, ElementId{2}, {40.01, -74.0}));
  t.add(elem(5, ElementKind::kRnc, ElementId{1}));
  t.add(elem(6, ElementKind::kNodeB, ElementId{5}, {40.02, -74.0}));
  t.add_neighbor_link(ElementId{4}, ElementId{6});
  return t;
}

TEST(Topology, AddAndLookup) {
  const Topology t = small_topo();
  EXPECT_EQ(t.size(), 6u);
  EXPECT_TRUE(t.contains(ElementId{3}));
  EXPECT_EQ(t.get(ElementId{3}).kind, ElementKind::kNodeB);
}

TEST(Topology, RejectsInvalidId) {
  Topology t;
  EXPECT_THROW(t.add(elem(0, ElementKind::kMsc)), std::invalid_argument);
}

TEST(Topology, RejectsDuplicateId) {
  Topology t;
  t.add(elem(1, ElementKind::kMsc));
  EXPECT_THROW(t.add(elem(1, ElementKind::kRnc)), std::invalid_argument);
}

TEST(Topology, RejectsUnknownParent) {
  Topology t;
  EXPECT_THROW(t.add(elem(2, ElementKind::kRnc, ElementId{9})),
               std::invalid_argument);
}

TEST(Topology, GetUnknownThrows) {
  const Topology t = small_topo();
  EXPECT_THROW(t.get(ElementId{99}), std::out_of_range);
}

TEST(Topology, ParentAndChildren) {
  const Topology t = small_topo();
  EXPECT_EQ(t.parent_of(ElementId{3}), ElementId{2});
  EXPECT_FALSE(t.parent_of(ElementId{1}).has_value());
  const auto kids = t.children_of(ElementId{2});
  EXPECT_EQ(kids.size(), 2u);
  EXPECT_TRUE(t.children_of(ElementId{3}).empty());
}

TEST(Topology, NeighborsAreSymmetric) {
  const Topology t = small_topo();
  const auto n4 = t.neighbors_of(ElementId{4});
  const auto n6 = t.neighbors_of(ElementId{6});
  ASSERT_EQ(n4.size(), 1u);
  ASSERT_EQ(n6.size(), 1u);
  EXPECT_EQ(n4[0], ElementId{6});
  EXPECT_EQ(n6[0], ElementId{4});
}

TEST(Topology, NeighborSelfLinkIgnored) {
  Topology t = small_topo();
  t.add_neighbor_link(ElementId{3}, ElementId{3});
  EXPECT_TRUE(t.neighbors_of(ElementId{3}).empty());
}

TEST(Topology, NeighborDuplicateLinkIdempotent) {
  Topology t = small_topo();
  t.add_neighbor_link(ElementId{4}, ElementId{6});
  EXPECT_EQ(t.neighbors_of(ElementId{4}).size(), 1u);
}

TEST(Topology, SubtreeContainsAllDescendants) {
  const Topology t = small_topo();
  auto sub = t.subtree_of(ElementId{1});
  std::sort(sub.begin(), sub.end());
  EXPECT_EQ(sub.size(), 6u);
  auto leaf = t.subtree_of(ElementId{3});
  EXPECT_EQ(leaf, (std::vector<ElementId>{ElementId{3}}));
}

TEST(Topology, AncestorOfKind) {
  const Topology t = small_topo();
  EXPECT_EQ(t.ancestor_of_kind(ElementId{3}, ElementKind::kMsc), ElementId{1});
  EXPECT_EQ(t.ancestor_of_kind(ElementId{3}, ElementKind::kRnc), ElementId{2});
  EXPECT_EQ(t.ancestor_of_kind(ElementId{3}, ElementKind::kNodeB),
            ElementId{3});  // self counts
  EXPECT_FALSE(
      t.ancestor_of_kind(ElementId{1}, ElementKind::kRnc).has_value());
}

TEST(Topology, ImpactScopeIncludesNeighborsOfTowers) {
  const Topology t = small_topo();
  // Changing RNC 2: scope = {2,3,4} plus tower 4's neighbor 6.
  const auto scope = t.impact_scope(ElementId{2});
  EXPECT_TRUE(scope.contains(ElementId{2}));
  EXPECT_TRUE(scope.contains(ElementId{3}));
  EXPECT_TRUE(scope.contains(ElementId{4}));
  EXPECT_TRUE(scope.contains(ElementId{6}));
  EXPECT_FALSE(scope.contains(ElementId{5}));  // other RNC itself untouched
  EXPECT_FALSE(scope.contains(ElementId{1}));
}

TEST(Topology, OfKindAndTechnology) {
  const Topology t = small_topo();
  EXPECT_EQ(t.of_kind(ElementKind::kNodeB).size(), 3u);
  EXPECT_EQ(t.of_kind(ElementKind::kRnc).size(), 2u);
  EXPECT_EQ(t.of_technology(Technology::kUmts).size(), 6u);
  EXPECT_TRUE(t.of_technology(Technology::kLte).empty());
}

TEST(Topology, InRegion) {
  const Topology t = small_topo();
  EXPECT_EQ(t.in_region(Region::kNortheast).size(), 6u);
  EXPECT_TRUE(t.in_region(Region::kWest).empty());
}

TEST(Topology, WithinRadiusExcludesCenter) {
  const Topology t = small_topo();
  const auto near = t.within_radius(ElementId{3}, 5.0);
  EXPECT_TRUE(std::find(near.begin(), near.end(), ElementId{3}) == near.end());
  EXPECT_FALSE(near.empty());
  EXPECT_TRUE(t.within_radius(ElementId{3}, 0.0001).empty() ||
              !t.within_radius(ElementId{3}, 0.0001).empty());
  // 1.1 km covers tower 4 (~1.1 km north) but check monotonicity instead:
  EXPECT_LE(t.within_radius(ElementId{3}, 1.0).size(),
            t.within_radius(ElementId{3}, 10.0).size());
}

TEST(Topology, SameZipExcludesSelf) {
  const Topology t = small_topo();
  // ids 3 and 6 share zip 10000 (id%3==0); 1 is in 10001... compute:
  const auto same = t.same_zip(ElementId{3});
  EXPECT_TRUE(std::find(same.begin(), same.end(), ElementId{3}) == same.end());
  for (const auto id : same)
    EXPECT_EQ(t.get(id).zip, t.get(ElementId{3}).zip);
}

TEST(Topology, MutableConfigWritesThrough) {
  Topology t = small_topo();
  t.mutable_config(ElementId{3}).antenna.tilt_deg = 6.5;
  EXPECT_DOUBLE_EQ(t.get(ElementId{3}).config.antenna.tilt_deg, 6.5);
}

TEST(Topology, RehomeMovesChildAndUpdatesAdjacency) {
  Topology t = small_topo();
  t.rehome(ElementId{3}, ElementId{5});  // NodeB 3: RNC 2 -> RNC 5
  EXPECT_EQ(t.parent_of(ElementId{3}), ElementId{5});
  EXPECT_EQ(t.children_of(ElementId{2}).size(), 1u);
  EXPECT_EQ(t.children_of(ElementId{5}).size(), 2u);
  // The subtree and ancestor queries follow the new edge.
  EXPECT_EQ(t.ancestor_of_kind(ElementId{3}, ElementKind::kRnc),
            ElementId{5});
  const auto sub = t.subtree_of(ElementId{5});
  EXPECT_EQ(sub.size(), 3u);
}

TEST(Topology, RehomeRejectsCyclesAndUnknowns) {
  Topology t = small_topo();
  EXPECT_THROW(t.rehome(ElementId{2}, ElementId{3}), std::invalid_argument);
  EXPECT_THROW(t.rehome(ElementId{2}, ElementId{2}), std::invalid_argument);
  EXPECT_THROW(t.rehome(ElementId{2}, ElementId{99}), std::invalid_argument);
  EXPECT_THROW(t.rehome(ElementId{99}, ElementId{2}), std::invalid_argument);
}

TEST(Topology, RehomeRootGainsParent) {
  Topology t = small_topo();
  // RNC 5's parent is MSC 1; re-home a root is also legal: add a root RNC.
  t.add(elem(7, ElementKind::kRnc));
  t.rehome(ElementId{7}, ElementId{1});
  EXPECT_EQ(t.parent_of(ElementId{7}), ElementId{1});
}

TEST(Topology, AllPreservesInsertionOrder) {
  const Topology t = small_topo();
  const auto& all = t.all();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all.front(), ElementId{1});
  EXPECT_EQ(all.back(), ElementId{6});
}

}  // namespace
}  // namespace litmus::net
