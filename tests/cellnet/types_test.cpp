#include "cellnet/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace litmus::net {
namespace {

TEST(Types, TowerClassification) {
  EXPECT_TRUE(is_tower(ElementKind::kBts));
  EXPECT_TRUE(is_tower(ElementKind::kNodeB));
  EXPECT_TRUE(is_tower(ElementKind::kEnodeB));
  EXPECT_FALSE(is_tower(ElementKind::kRnc));
  EXPECT_FALSE(is_tower(ElementKind::kMsc));
}

TEST(Types, ControllerClassification) {
  EXPECT_TRUE(is_controller(ElementKind::kBsc));
  EXPECT_TRUE(is_controller(ElementKind::kRnc));
  // In LTE the eNodeB is its own controller (paper Section 2.1).
  EXPECT_TRUE(is_controller(ElementKind::kEnodeB));
  EXPECT_FALSE(is_controller(ElementKind::kNodeB));
}

TEST(Types, CoreClassification) {
  for (const auto k : {ElementKind::kMsc, ElementKind::kGmsc,
                       ElementKind::kSgsn, ElementKind::kGgsn,
                       ElementKind::kMme, ElementKind::kSgw,
                       ElementKind::kPgw, ElementKind::kHss,
                       ElementKind::kPcrf})
    EXPECT_TRUE(is_core(k)) << to_string(k);
  EXPECT_FALSE(is_core(ElementKind::kRnc));
  EXPECT_FALSE(is_core(ElementKind::kNodeB));
}

TEST(Types, ToStringsAreDistinct) {
  std::unordered_set<std::string> names;
  for (int k = 0; k <= static_cast<int>(ElementKind::kPcrf); ++k)
    names.insert(to_string(static_cast<ElementKind>(k)));
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(ElementKind::kPcrf) + 1);
}

TEST(Types, ElementIdComparesAndHashes) {
  EXPECT_EQ(ElementId{3}, ElementId{3});
  EXPECT_NE(ElementId{3}, ElementId{4});
  EXPECT_LT(ElementId{3}, ElementId{4});
  std::unordered_set<ElementId> set{ElementId{1}, ElementId{2}, ElementId{1}};
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(kInvalidElement.value, 0u);
}

TEST(Types, TechnologyNames) {
  EXPECT_STREQ(to_string(Technology::kGsm), "GSM");
  EXPECT_STREQ(to_string(Technology::kUmts), "UMTS");
  EXPECT_STREQ(to_string(Technology::kLte), "LTE");
}

TEST(Types, RegionNames) {
  EXPECT_STREQ(to_string(Region::kNortheast), "Northeast");
  EXPECT_STREQ(to_string(Region::kSouthwest), "Southwest");
}

}  // namespace
}  // namespace litmus::net
