#include "cellnet/geo.h"

#include <gtest/gtest.h>

namespace litmus::net {
namespace {

TEST(Haversine, ZeroDistanceForSamePoint) {
  const GeoPoint p{40.0, -74.0};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, KnownCityPair) {
  // NYC to LA is ~3936 km.
  const GeoPoint nyc{40.7128, -74.0060};
  const GeoPoint la{34.0522, -118.2437};
  EXPECT_NEAR(haversine_km(nyc, la), 3936.0, 40.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{41.0, -73.0};
  const GeoPoint b{33.0, -84.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, OneDegreeLatitude) {
  // One degree of latitude is ~111 km everywhere.
  const GeoPoint a{40.0, -100.0};
  const GeoPoint b{41.0, -100.0};
  EXPECT_NEAR(haversine_km(a, b), 111.2, 1.0);
}

TEST(ZipCode, ZeroPadsToFiveDigits) {
  EXPECT_EQ(ZipCode{732}.to_string(), "00732");
  EXPECT_EQ(ZipCode{10001}.to_string(), "10001");
}

TEST(ZipCode, Ordering) {
  EXPECT_LT(ZipCode{100}, ZipCode{200});
  EXPECT_EQ(ZipCode{100}, ZipCode{100});
}

TEST(RegionOf, AnchorsMapToTheirRegions) {
  for (const Region r :
       {Region::kNortheast, Region::kSoutheast, Region::kMidwest,
        Region::kSouthwest, Region::kWest}) {
    EXPECT_EQ(region_of(region_anchor(r)), r) << to_string(r);
  }
}

TEST(RegionOf, TotalOverOddPoints) {
  // Any coordinates produce *some* region (no crash, no gap).
  (void)region_of({0.0, 0.0});
  (void)region_of({90.0, 180.0});
  (void)region_of({-90.0, -180.0});
}

TEST(FoliageRegions, NortheastYesSoutheastNo) {
  EXPECT_TRUE(has_foliage_seasonality(Region::kNortheast));
  EXPECT_FALSE(has_foliage_seasonality(Region::kSoutheast));
  EXPECT_FALSE(has_foliage_seasonality(Region::kWest));
}

}  // namespace
}  // namespace litmus::net
