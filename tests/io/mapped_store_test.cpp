// Mapped columnar store tests: bit-identity of the zero-copy provider
// against the heap SeriesStore path, rejection of every corruption class
// (bad magic, truncation, checksum flip) with the CSV fallback emitting a
// warning event instead of half-populating, and lock-free concurrent
// readers (this binary runs under TSan in CI).
#include "io/mapped_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/ingest.h"
#include "io/snapshot.h"
#include "io/store.h"
#include "obs/events.h"
#include "simkit/scale.h"

namespace litmus::io {
namespace {

namespace fs = std::filesystem;

class MappedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("litmus_mapped_store_test_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// A small scale corpus (two KPIs, a few clusters) whose snapshot the
  /// tests map. Generated once per test into the temp root.
  std::string make_snapshot() {
    sim::ScaleCorpusConfig cfg;
    cfg.elements = 120;
    cfg.cluster_size = 40;
    sim::write_scale_corpus((root_ / "corpus").string(), cfg);
    return (root_ / "corpus" / "series.litmus-snap").string();
  }

  /// Copies the snapshot and applies `mutate` to the copy's bytes.
  std::string corrupt_copy(const std::string& snap, const std::string& name,
                           void (*mutate)(std::string&)) {
    std::ifstream in(snap, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    mutate(bytes);
    const fs::path out = root_ / name;
    std::ofstream(out, std::ios::binary) << bytes;
    return out.string();
  }

  fs::path root_;
};

TEST_F(MappedStoreTest, ProviderBitIdenticalToHeapStore) {
  const std::string snap = make_snapshot();
  std::string why;
  const auto mapped = MappedStore::open(snap, &why);
  ASSERT_NE(mapped, nullptr) << why;

  SeriesStore heap;
  ASSERT_EQ(load_series_snapshot(snap, heap, 0, 0, &why),
            SnapshotLoad::kLoaded)
      << why;
  ASSERT_EQ(mapped->size(), heap.size());

  const core::SeriesProvider pm = mapped->provider();
  const core::SeriesProvider ph = heap.provider();
  // Window shapes: fully inside the column, straddling its start, its
  // end, and fully outside — the kMissing-padding paths must agree too.
  struct Window {
    std::int64_t start;
    std::size_t n;
  };
  const Window windows[] = {{-48, 24}, {-60, 24}, {10, 40}, {100, 8},
                            {-200, 8}, {-48, 72}};
  for (const auto& entry : mapped->entries()) {
    for (const auto& w : windows) {
      const ts::TimeSeries a =
          pm(net::ElementId{entry.key.first}, entry.key.second, w.start, w.n);
      const ts::TimeSeries b =
          ph(net::ElementId{entry.key.first}, entry.key.second, w.start, w.n);
      ASSERT_EQ(a.start_bin(), b.start_bin());
      ASSERT_EQ(a.values().size(), b.values().size());
      // memcmp, not ==: NaN missing bins must match bit for bit.
      ASSERT_EQ(std::memcmp(a.values().data(), b.values().data(),
                            a.values().size() * sizeof(double)),
                0)
          << "element " << entry.key.first << " window "
          << w.start << "+" << w.n;
    }
  }
}

TEST_F(MappedStoreTest, UnknownSeriesIsAllMissingLikeHeap) {
  const std::string snap = make_snapshot();
  const auto mapped = MappedStore::open(snap);
  ASSERT_NE(mapped, nullptr);
  EXPECT_EQ(mapped->find(net::ElementId{999999},
                         kpi::KpiId::kVoiceRetainability),
            nullptr);
  const ts::TimeSeries t = mapped->provider()(
      net::ElementId{999999}, kpi::KpiId::kVoiceRetainability, -48, 24);
  ASSERT_EQ(t.values().size(), 24u);
  for (const double v : t.values()) EXPECT_TRUE(std::isnan(v));
}

TEST_F(MappedStoreTest, RejectsBadMagic) {
  const std::string snap = make_snapshot();
  const std::string bad = corrupt_copy(
      snap, "bad_magic.litmus-snap", [](std::string& b) { b[0] ^= 0xFF; });
  std::string why;
  EXPECT_EQ(MappedStore::open(bad, &why), nullptr);
  EXPECT_FALSE(why.empty());
}

TEST_F(MappedStoreTest, RejectsTruncation) {
  const std::string snap = make_snapshot();
  // Header-level truncation and payload-level truncation both reject.
  const std::string short_header = corrupt_copy(
      snap, "short_header.litmus-snap",
      [](std::string& b) { b.resize(20); });
  const std::string short_body = corrupt_copy(
      snap, "short_body.litmus-snap",
      [](std::string& b) { b.resize(b.size() - 64); });
  std::string why;
  EXPECT_EQ(MappedStore::open(short_header, &why), nullptr);
  EXPECT_FALSE(why.empty());
  EXPECT_EQ(MappedStore::open(short_body, &why), nullptr);
  EXPECT_FALSE(why.empty());
}

TEST_F(MappedStoreTest, RejectsChecksumFlip) {
  const std::string snap = make_snapshot();
  // One bit in the middle of the payload: headers still parse, the FNV
  // trailer does not match.
  const std::string bad = corrupt_copy(
      snap, "bitflip.litmus-snap",
      [](std::string& b) { b[b.size() / 2] ^= 0x01; });
  std::string why;
  EXPECT_EQ(MappedStore::open(bad, &why), nullptr);
  EXPECT_NE(why.find("checksum"), std::string::npos) << why;
}

TEST_F(MappedStoreTest, CorruptSnapshotFallsBackToCsvWithWarning) {
  // A tiny series CSV, ingested through the mapped path twice: the first
  // call parses and writes the snapshot cache, then we corrupt the cache
  // and ingest again — the corrupt snapshot must be rejected, the CSV
  // reparsed, and a warning event emitted. Never a half-populated store.
  const fs::path csv = root_ / "series.csv";
  {
    std::ofstream out(csv);
    out << "# element_id, kpi_name, bin, value\n";
    for (int e = 1; e <= 3; ++e)
      for (int b = -4; b < 4; ++b)
        out << e << ", voice_retainability, " << b << ", 0.9" << e << "\n";
  }
  IngestOptions opts;
  opts.snapshot_dir = (root_ / "snapcache").string();

  const MappedIngest first = ingest_series_file_mapped(csv.string(), opts);
  ASSERT_NE(first.store, nullptr);
  EXPECT_FALSE(first.report.from_snapshot);
  ASSERT_FALSE(first.report.snapshot_path.empty());

  const MappedIngest warm = ingest_series_file_mapped(csv.string(), opts);
  EXPECT_TRUE(warm.report.from_snapshot);

  // Flip one payload byte in the cached snapshot.
  {
    std::fstream f(first.report.snapshot_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size / 2);
    char c;
    f.seekg(size / 2);
    f.get(c);
    f.seekp(size / 2);
    f.put(static_cast<char>(c ^ 0x01));
  }

  std::ostringstream event_bytes;
  MappedIngest fallback;
  {
    obs::EventLog log(event_bytes);  // flushes its buffer on destruction
    obs::set_events(&log);
    fallback = ingest_series_file_mapped(csv.string(), opts);
    obs::set_events(nullptr);
  }

  ASSERT_NE(fallback.store, nullptr);
  EXPECT_FALSE(fallback.report.from_snapshot);
  EXPECT_EQ(fallback.store->size(), first.store->size());
  EXPECT_NE(event_bytes.str().find("\"type\":\"warning\""),
            std::string::npos)
      << event_bytes.str();

  // The reparsed store serves the same bits as the first parse.
  const core::SeriesProvider pa = first.store->provider();
  const core::SeriesProvider pb = fallback.store->provider();
  for (int e = 1; e <= 3; ++e) {
    const ts::TimeSeries a = pa(net::ElementId{static_cast<std::uint32_t>(e)},
                                kpi::KpiId::kVoiceRetainability, -4, 8);
    const ts::TimeSeries b = pb(net::ElementId{static_cast<std::uint32_t>(e)},
                                kpi::KpiId::kVoiceRetainability, -4, 8);
    ASSERT_EQ(std::memcmp(a.values().data(), b.values().data(),
                          a.values().size() * sizeof(double)),
              0);
  }
}

TEST_F(MappedStoreTest, ConcurrentReadersAreBitIdentical) {
  // N threads fetch windows from one shared store — disjoint element
  // ranges first, then all threads over the same elements — and FNV-hash
  // the bytes they see. Every thread must observe exactly the bits a
  // serial reference pass observes. TSan (CI leg) checks the data-race
  // freedom claim; this test checks the values.
  const std::string snap = make_snapshot();
  const auto mapped = MappedStore::open(snap);
  ASSERT_NE(mapped, nullptr);
  const auto& entries = mapped->entries();
  ASSERT_FALSE(entries.empty());

  const auto hash_range = [&](std::size_t lo, std::size_t hi) {
    const core::SeriesProvider p = mapped->provider();
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = lo; i < hi; ++i) {
      const ts::TimeSeries t =
          p(net::ElementId{entries[i].key.first}, entries[i].key.second, -48, 72);
      for (const double v : t.values()) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        h = (h ^ bits) * 1099511628211ull;
      }
    }
    return h;
  };

  constexpr std::size_t kThreads = 8;
  const std::size_t per = entries.size() / kThreads;

  // Disjoint ranges.
  std::vector<std::uint64_t> serial(kThreads), threaded(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i)
    serial[i] = hash_range(i * per, (i + 1) * per);
  {
    std::vector<std::thread> workers;
    for (std::size_t i = 0; i < kThreads; ++i)
      workers.emplace_back(
          [&, i] { threaded[i] = hash_range(i * per, (i + 1) * per); });
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(threaded, serial);

  // Overlapping: every thread reads the full store.
  const std::uint64_t all = hash_range(0, entries.size());
  std::vector<std::uint64_t> overlap(kThreads);
  {
    std::vector<std::thread> workers;
    for (std::size_t i = 0; i < kThreads; ++i)
      workers.emplace_back(
          [&, i] { overlap[i] = hash_range(0, entries.size()); });
    for (auto& w : workers) w.join();
  }
  for (const std::uint64_t h : overlap) EXPECT_EQ(h, all);
}

}  // namespace
}  // namespace litmus::io
