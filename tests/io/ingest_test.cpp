// The mmap chunk-parallel fast path must be indistinguishable from the
// serial CsvReader loader: bit-identical stores for well-formed input at
// every chunk count, and byte-identical CsvError messages for malformed
// input. These tests drive both parsers over shared corpora.
#include "io/ingest.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "io/csv.h"
#include "io/store.h"
#include "tsmath/random.h"

namespace litmus::io {
namespace {

namespace fs = std::filesystem;

// Bit-exact store equality: same keys, same layout, same value *bits*
// (NaN payloads included) — the determinism contract, not an epsilon.
void expect_stores_identical(const SeriesStore& a, const SeriesStore& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ib = b.entries().begin();
  for (const auto& [key, sa] : a.entries()) {
    ASSERT_EQ(key, ib->first);
    const ts::TimeSeries& sb = ib->second;
    ASSERT_EQ(sa.start_bin(), sb.start_bin());
    ASSERT_EQ(sa.bin_minutes(), sb.bin_minutes());
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sa[i]),
                std::bit_cast<std::uint64_t>(sb[i]))
          << "value " << i << " of element " << key.first;
    }
    ++ib;
  }
}

SeriesStore parse_serial(const std::string& csv, std::size_t* rows = nullptr) {
  std::istringstream in(csv);
  SeriesStore store;
  const std::size_t n = load_series_csv(in, store);
  if (rows) *rows = n;
  return store;
}

SeriesStore parse_fast(const std::string& csv, std::size_t chunks,
                       std::size_t* rows = nullptr) {
  SeriesStore store;
  IngestOptions opts;
  opts.force_chunks = chunks;
  const std::size_t n = load_series_csv_fast(csv, store, opts);
  if (rows) *rows = n;
  return store;
}

// A messy but valid corpus: comments, blanks, CRLF, padded fields, nan
// spellings, duplicate rows (last wins), out-of-order bins, sparse gaps.
std::string messy_csv() {
  return
      "# element_id, kpi_name, bin, value\n"
      "\n"
      "1, voice_retainability, -3, 0.97\r\n"
      "1, voice_retainability, -1, 0.98\n"
      "1, voice_retainability, -2, NaN\n"
      "  2 ,\tdata_retainability , 5 , 0.91 \n"
      "# interior comment\n"
      "2, data_retainability, 7, NAN\n"
      "1, voice_retainability, -3, 0.9701\n"  // duplicate bin: last wins
      "3, data_throughput, 100, 12345.5\n"
      "3, data_throughput, 90, nan\n"
      "2, data_retainability, 5, 0.9100001\n";  // another last-wins
}

std::string synthetic_csv(std::size_t rows) {
  ts::Rng rng(77);
  std::string csv = "# element_id, kpi_name, bin, value\n";
  const char* kpis[3] = {"voice_retainability", "data_accessibility",
                         "data_throughput"};
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t e = 1 + rng.next_below(40);
    const char* k = kpis[rng.next_below(3)];
    const std::int64_t bin =
        static_cast<std::int64_t>(rng.next_below(500)) - 250;
    csv += std::to_string(e);
    csv += ',';
    csv += k;
    csv += ',';
    csv += std::to_string(bin);
    csv += ',';
    if (rng.chance(0.05)) {
      csv += "nan";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.9f", rng.next_double());
      csv += buf;
    }
    csv += '\n';
  }
  return csv;
}

TEST(ChunkBoundaries, NewlineAlignedAndDeterministic) {
  const std::string data = "aa\nbbbb\nc\n\ndddddd\neee";
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto b = detail::chunk_boundaries(data, n);
    ASSERT_GE(b.size(), 2u);
    EXPECT_EQ(b.front(), 0u);
    EXPECT_EQ(b.back(), data.size());
    for (std::size_t i = 1; i < b.size(); ++i) {
      EXPECT_GE(b[i], b[i - 1]);
      if (i + 1 < b.size() && b[i] > 0 && b[i] < data.size()) {
        EXPECT_EQ(data[b[i] - 1], '\n') << "boundary " << i << " at " << b[i];
      }
    }
    // Same input, same split — twice.
    EXPECT_EQ(b, detail::chunk_boundaries(data, n));
  }
}

TEST(ChunkBoundaries, MoreChunksThanLines) {
  const auto b = detail::chunk_boundaries("x\ny\n", 16);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 4u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GE(b[i], b[i - 1]);
}

TEST(CountLines, MatchesGetlineSemantics) {
  EXPECT_EQ(detail::count_lines(""), 0u);
  EXPECT_EQ(detail::count_lines("a"), 1u);       // unterminated final line
  EXPECT_EQ(detail::count_lines("a\n"), 1u);
  EXPECT_EQ(detail::count_lines("a\nb"), 2u);
  EXPECT_EQ(detail::count_lines("a\nb\n"), 2u);
  EXPECT_EQ(detail::count_lines("\n\n\n"), 3u);
}

TEST(InputBuffer, MapFileSeesExactBytes) {
  const fs::path path =
      fs::temp_directory_path() / "litmus_ingest_mapfile_test.bin";
  const std::string payload = "line one\nline two\nbinary \0 byte\n";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  InputBuffer buf = InputBuffer::map_file(path.string());
  EXPECT_EQ(buf.view(), std::string_view(payload));
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(buf.mapped());
#endif
  InputBuffer moved = std::move(buf);
  EXPECT_EQ(moved.view(), std::string_view(payload));
  fs::remove(path);
}

TEST(InputBuffer, MissingFileThrows) {
  EXPECT_THROW(InputBuffer::map_file("/nonexistent/litmus-nope.csv"),
               std::runtime_error);
}

TEST(InputBuffer, EmptyFileYieldsEmptyView) {
  const fs::path path = fs::temp_directory_path() / "litmus_ingest_empty.csv";
  { std::ofstream out(path, std::ios::binary); }
  InputBuffer buf = InputBuffer::map_file(path.string());
  EXPECT_EQ(buf.size(), 0u);
  fs::remove(path);
}

TEST(IngestFast, BitIdenticalToSerialAtEveryChunkCount) {
  const std::string csv = messy_csv();
  std::size_t serial_rows = 0;
  const SeriesStore serial = parse_serial(csv, &serial_rows);
  ASSERT_GT(serial.size(), 0u);
  for (std::size_t chunks : {1, 2, 3, 4, 5, 8}) {
    SCOPED_TRACE("chunks=" + std::to_string(chunks));
    std::size_t fast_rows = 0;
    const SeriesStore fast = parse_fast(csv, chunks, &fast_rows);
    EXPECT_EQ(fast_rows, serial_rows);
    expect_stores_identical(serial, fast);
  }
}

TEST(IngestFast, BitIdenticalOnSyntheticCorpus) {
  const std::string csv = synthetic_csv(5000);
  std::size_t serial_rows = 0;
  const SeriesStore serial = parse_serial(csv, &serial_rows);
  EXPECT_EQ(serial_rows, 5000u);
  for (std::size_t chunks : {1, 3, 7}) {
    SCOPED_TRACE("chunks=" + std::to_string(chunks));
    const SeriesStore fast = parse_fast(csv, chunks);
    expect_stores_identical(serial, fast);
  }
}

TEST(IngestFast, RoundTripThroughWriter) {
  // write_csv_row output must parse back to the exact same store on both
  // paths (the property the CSV round-trip has always promised).
  SeriesStore original;
  ts::Rng rng(3);
  for (std::uint32_t e = 1; e <= 6; ++e) {
    std::vector<double> values;
    for (int i = 0; i < 48; ++i)
      values.push_back(rng.chance(0.1) ? ts::kMissing
                                       : rng.normal(0.95, 0.01));
    original.put(net::ElementId{e}, kpi::KpiId::kVoiceRetainability,
                 ts::TimeSeries(-24, std::move(values)));
  }
  std::ostringstream out;
  for (const auto& [key, series] : original.entries())
    save_series_csv(out, net::ElementId{key.first}, key.second, series);
  const std::string csv = out.str();

  const SeriesStore serial = parse_serial(csv);
  const SeriesStore fast = parse_fast(csv, 4);
  expect_stores_identical(serial, fast);
  // The store itself round-trips too: format_value falls back to 17
  // significant digits whenever 10 would lose bits, and NaN round-trips
  // through "nan".
  expect_stores_identical(original, serial);
}

TEST(IngestFast, TruncatedFinalLineWithoutNewline) {
  std::string csv = messy_csv();
  csv += "9, data_throughput, 1, 5.5";  // no trailing '\n'
  const SeriesStore serial = parse_serial(csv);
  for (std::size_t chunks : {1, 2, 5}) {
    SCOPED_TRACE("chunks=" + std::to_string(chunks));
    expect_stores_identical(serial, parse_fast(csv, chunks));
  }
  EXPECT_TRUE(serial.contains(net::ElementId{9}, kpi::KpiId::kDataThroughput));
}

TEST(IngestFast, CommentOnlyAndEmptyInputs) {
  for (const std::string& csv :
       {std::string(""), std::string("\n\n"), std::string("# only\n# comments"),
        std::string("   \n\t\n")}) {
    SCOPED_TRACE("csv=[" + csv + "]");
    std::size_t rows = 99;
    const SeriesStore fast = parse_fast(csv, 3, &rows);
    EXPECT_EQ(rows, 0u);
    EXPECT_EQ(fast.size(), 0u);
  }
}

// Malformed rows must fail with *byte-identical* messages from both paths,
// pinned to the same 1-based physical line, regardless of the chunk split.
struct BadCase {
  const char* name;
  std::string csv;
};

std::vector<BadCase> bad_corpus() {
  std::vector<BadCase> cases;
  cases.push_back({"bad element id",
                   "# h\n1, voice_retainability, 0, 0.5\n"
                   "x, voice_retainability, 1, 0.5\n"});
  cases.push_back({"negative element id",
                   "-4, voice_retainability, 0, 0.5\n"});
  cases.push_back({"unknown kpi",
                   "1, voice_retainability, 0, 0.5\n"
                   "\n# c\n"
                   "1, bogus_kpi, 1, 0.5\n"});
  cases.push_back({"bad bin", "1, voice_retainability, 1.5, 0.5\n"});
  cases.push_back({"wrong field count",
                   "1, voice_retainability, 0, 0.5\n"
                   "1, voice_retainability, 0\n"});
  cases.push_back({"extra field",
                   "1, voice_retainability, 0, 0.5, surprise\n"});
  // Interior NUL bytes: NULs are field bytes, so the field fails to parse
  // like any other garbage — identically on both paths.
  std::string nul = "1, voice_retainability, 0, 0.5\n";
  nul += "1, voice_retainability, ";
  nul += '\0';
  nul += "7, 0.5\n";
  cases.push_back({"interior NUL", nul});
  // Error on the unterminated final line.
  cases.push_back({"truncated bad row",
                   "1, voice_retainability, 0, 0.5\nbroken"});
  return cases;
}

TEST(IngestFast, MalformedCorpusMatchesSerialErrors) {
  for (const BadCase& c : bad_corpus()) {
    SCOPED_TRACE(c.name);
    std::string serial_what;
    std::uint64_t serial_line = 0;
    try {
      (void)parse_serial(c.csv);
      FAIL() << "serial parser accepted " << c.name;
    } catch (const CsvError& e) {
      serial_what = e.what();
      serial_line = e.line();
    }
    for (std::size_t chunks : {1, 2, 4}) {
      SCOPED_TRACE("chunks=" + std::to_string(chunks));
      try {
        (void)parse_fast(c.csv, chunks);
        FAIL() << "fast parser accepted " << c.name;
      } catch (const CsvError& e) {
        EXPECT_EQ(std::string(e.what()), serial_what);
        EXPECT_EQ(e.line(), serial_line);
      }
    }
  }
}

TEST(IngestFast, FirstErrorInFileOrderWins) {
  // Two bad rows in different chunks: the reported error must be the
  // earliest one in *file* order even when a later chunk fails first.
  std::string csv;
  for (int i = 0; i < 50; ++i)
    csv += "1, voice_retainability, " + std::to_string(i) + ", 0.5\n";
  csv += "bad-row-a\n";
  for (int i = 50; i < 100; ++i)
    csv += "1, voice_retainability, " + std::to_string(i) + ", 0.5\n";
  csv += "2, nope_kpi, 0, 0.5\n";
  try {
    (void)parse_fast(csv, 4);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 51u);
    EXPECT_NE(std::string(e.what()).find("expected 4 fields"),
              std::string::npos)
        << e.what();
  }
}

TEST(CsvError, CarriesSixtyFourBitLineNumbers) {
  // >4Gi lines: a 40+ GiB export must still report the exact line.
  const std::uint64_t line = 5'000'000'123ull;
  const CsvError e("series csv", line, "bad bin 'x'");
  EXPECT_EQ(e.line(), line);
  EXPECT_STREQ(e.what(), "series csv line 5000000123: bad bin 'x'");
}

TEST(IngestFile, EndToEndWithoutSnapshotCache) {
  const fs::path path = fs::temp_directory_path() / "litmus_ingest_e2e.csv";
  const std::string csv = synthetic_csv(2000);
  {
    std::ofstream out(path, std::ios::binary);
    out << csv;
  }
  SeriesStore store;
  const IngestReport rep = ingest_series_file(path.string(), store);
  EXPECT_EQ(rep.rows, 2000u);
  EXPECT_EQ(rep.bytes, csv.size());
  EXPECT_FALSE(rep.from_snapshot);
  EXPECT_NE(rep.fingerprint, 0u);
  EXPECT_EQ(rep.series, store.size());
  expect_stores_identical(parse_serial(csv), store);
  fs::remove(path);
}

// Scale smoke, off by default: LITMUS_INGEST_STRESS_ROWS=2000000 (or more)
// exercises multi-hundred-MiB inputs without shipping a 1 GiB CI artifact.
TEST(IngestFast, StressRowsEnvGated) {
  const char* env = std::getenv("LITMUS_INGEST_STRESS_ROWS");
  if (!env) GTEST_SKIP() << "set LITMUS_INGEST_STRESS_ROWS to run";
  const std::size_t rows = static_cast<std::size_t>(std::atoll(env));
  const std::string csv = synthetic_csv(rows);
  std::size_t serial_rows = 0, fast_rows = 0;
  const SeriesStore serial = parse_serial(csv, &serial_rows);
  const SeriesStore fast = parse_fast(csv, 8, &fast_rows);
  EXPECT_EQ(serial_rows, rows);
  EXPECT_EQ(fast_rows, rows);
  expect_stores_identical(serial, fast);
}

}  // namespace
}  // namespace litmus::io
