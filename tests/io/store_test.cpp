#include "io/store.h"

#include <gtest/gtest.h>

#include <sstream>

#include "cellnet/builder.h"
#include "io/csv.h"

namespace litmus::io {
namespace {

TEST(SeriesStore, PutGetContains) {
  SeriesStore store;
  store.put(net::ElementId{1}, kpi::KpiId::kVoiceRetainability,
            ts::TimeSeries(0, {0.9, 0.95}));
  EXPECT_TRUE(store.contains(net::ElementId{1},
                             kpi::KpiId::kVoiceRetainability));
  EXPECT_FALSE(
      store.contains(net::ElementId{1}, kpi::KpiId::kDataThroughput));
  EXPECT_FALSE(
      store.contains(net::ElementId{2}, kpi::KpiId::kVoiceRetainability));
  EXPECT_DOUBLE_EQ(
      store.get(net::ElementId{1}, kpi::KpiId::kVoiceRetainability).at_bin(1),
      0.95);
  EXPECT_THROW(store.get(net::ElementId{9}, kpi::KpiId::kDataThroughput),
               std::out_of_range);
}

TEST(SeriesStore, ProviderWindowsAndGaps) {
  SeriesStore store;
  store.put(net::ElementId{1}, kpi::KpiId::kVoiceRetainability,
            ts::TimeSeries(10, {0.1, 0.2, 0.3}));
  const core::SeriesProvider p = store.provider();
  // Window straddling the stored span: outside bins are missing.
  const ts::TimeSeries w =
      p(net::ElementId{1}, kpi::KpiId::kVoiceRetainability, 8, 6);
  EXPECT_TRUE(ts::is_missing(w.at_bin(8)));
  EXPECT_DOUBLE_EQ(w.at_bin(10), 0.1);
  EXPECT_DOUBLE_EQ(w.at_bin(12), 0.3);
  EXPECT_TRUE(ts::is_missing(w.at_bin(13)));
  // Absent series: fully missing window of the right shape.
  const ts::TimeSeries none =
      p(net::ElementId{5}, kpi::KpiId::kVoiceRetainability, 0, 4);
  EXPECT_EQ(none.size(), 4u);
  EXPECT_EQ(none.observed_count(), 0u);
}

TEST(SeriesCsv, RoundTrip) {
  ts::TimeSeries s(-2, {0.5, ts::kMissing, 0.75, 1.0});
  std::stringstream buf;
  save_series_csv(buf, net::ElementId{7}, kpi::KpiId::kDataRetainability, s);

  SeriesStore store;
  const std::size_t points = load_series_csv(buf, store);
  EXPECT_EQ(points, 4u);
  const ts::TimeSeries& r =
      store.get(net::ElementId{7}, kpi::KpiId::kDataRetainability);
  EXPECT_EQ(r.start_bin(), -2);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r.at_bin(-2), 0.5);
  EXPECT_TRUE(ts::is_missing(r.at_bin(-1)));
  EXPECT_DOUBLE_EQ(r.at_bin(1), 1.0);
}

TEST(SeriesCsv, MultipleSeriesInOneFile) {
  std::stringstream buf;
  buf << "1, voice_retainability, 0, 0.9\n"
      << "1, data_retainability, 0, 0.8\n"
      << "2, voice_retainability, 5, 0.7\n";
  SeriesStore store;
  EXPECT_EQ(load_series_csv(buf, store), 3u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_DOUBLE_EQ(
      store.get(net::ElementId{2}, kpi::KpiId::kVoiceRetainability)
          .at_bin(5),
      0.7);
}

TEST(SeriesCsv, SparseBinsFillGapsWithMissing) {
  std::stringstream buf;
  buf << "1, voice_retainability, 0, 0.9\n"
      << "1, voice_retainability, 3, 0.8\n";
  SeriesStore store;
  load_series_csv(buf, store);
  const auto& s =
      store.get(net::ElementId{1}, kpi::KpiId::kVoiceRetainability);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(ts::is_missing(s.at_bin(1)));
  EXPECT_TRUE(ts::is_missing(s.at_bin(2)));
}

TEST(SeriesCsv, MalformedRowsThrow) {
  SeriesStore store;
  std::stringstream missing_field("1, voice_retainability, 0\n");
  EXPECT_THROW(load_series_csv(missing_field, store), std::runtime_error);
  std::stringstream bad_kpi("1, not_a_kpi, 0, 0.9\n");
  EXPECT_THROW(load_series_csv(bad_kpi, store), std::runtime_error);
  std::stringstream bad_id("zero, voice_retainability, 0, 0.9\n");
  EXPECT_THROW(load_series_csv(bad_id, store), std::runtime_error);
}

TEST(TopologyCsv, RoundTripPreservesStructure) {
  const net::Topology original = net::build_small_region(
      net::Region::kMidwest, 31415, 3, 4);
  std::stringstream buf;
  save_topology_csv(buf, original);
  const net::Topology loaded = load_topology_csv(buf);

  ASSERT_EQ(loaded.size(), original.size());
  for (const auto id : original.all()) {
    const auto& a = original.get(id);
    const auto& b = loaded.get(id);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.technology, b.technology);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.zip, b.zip);
    EXPECT_EQ(a.region, b.region);
    EXPECT_EQ(a.market, b.market);
    EXPECT_NEAR(a.location.lat_deg, b.location.lat_deg, 1e-5);
    EXPECT_NEAR(a.location.lon_deg, b.location.lon_deg, 1e-5);
  }
  // Structural queries survive the round trip.
  EXPECT_EQ(loaded.of_kind(net::ElementKind::kRnc).size(),
            original.of_kind(net::ElementKind::kRnc).size());
  const auto rnc = loaded.of_kind(net::ElementKind::kRnc)[0];
  EXPECT_EQ(loaded.children_of(rnc).size(),
            original.children_of(rnc).size());
}

TEST(TopologyCsv, MalformedRowsThrow) {
  std::stringstream bad_kind("1, WOMBAT, UMTS, x, 1, 1, 1, Northeast, 0, 0\n");
  EXPECT_THROW(load_topology_csv(bad_kind), std::runtime_error);
  std::stringstream short_row("1, RNC, UMTS, x\n");
  EXPECT_THROW(load_topology_csv(short_row), std::runtime_error);
  std::stringstream bad_region(
      "1, RNC, UMTS, x, 1, 1, 1, Atlantis, 0, 0\n");
  EXPECT_THROW(load_topology_csv(bad_region), std::runtime_error);
}

TEST(SeriesCsv, ErrorsNameTheOffendingLine) {
  // The bad row sits on physical line 4 (header comment + two good rows).
  std::stringstream buf;
  buf << "# element_id, kpi_name, bin, value\n"
      << "1, voice_retainability, 0, 0.9\n"
      << "1, voice_retainability, 1, 0.8\n"
      << "1, voice_retainability, 2\n";
  SeriesStore store;
  try {
    load_series_csv(buf, store);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 4u);
    EXPECT_STREQ(e.what(), "series csv line 4: expected 4 fields, got 3");
  }
}

TEST(TopologyCsv, ErrorsNameTheOffendingLine) {
  std::stringstream buf;
  buf << "# header\n"
      << "1, RNC, UMTS, good, 1, 1, 1, Northeast, 0, 0\n"
      << "2, WOMBAT, UMTS, bad, 1, 1, 1, Northeast, 0, 0\n";
  try {
    load_topology_csv(buf);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_STREQ(e.what(), "topology csv line 3: unknown element kind "
                           "'WOMBAT'");
  }
}

}  // namespace
}  // namespace litmus::io
