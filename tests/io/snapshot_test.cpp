// Snapshot cache correctness: bit-exact round-trips, every invalidation
// rule in io/snapshot.h, and the full miss -> hit -> invalidate lifecycle
// through ingest_series_file().
#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "io/ingest.h"
#include "io/store.h"
#include "tsmath/random.h"
#include "tsmath/timeseries.h"

namespace litmus::io {
namespace {

namespace fs = std::filesystem;

void expect_stores_identical(const SeriesStore& a, const SeriesStore& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ib = b.entries().begin();
  for (const auto& [key, sa] : a.entries()) {
    ASSERT_EQ(key, ib->first);
    const ts::TimeSeries& sb = ib->second;
    ASSERT_EQ(sa.start_bin(), sb.start_bin());
    ASSERT_EQ(sa.bin_minutes(), sb.bin_minutes());
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sa[i]),
                std::bit_cast<std::uint64_t>(sb[i]));
    ++ib;
  }
}

SeriesStore sample_store() {
  SeriesStore store;
  ts::Rng rng(11);
  for (std::uint32_t e = 1; e <= 5; ++e) {
    std::vector<double> values;
    for (int i = 0; i < 72; ++i)
      values.push_back(rng.chance(0.08) ? ts::kMissing
                                        : rng.normal(0.96, 0.015));
    store.put(net::ElementId{e}, kpi::KpiId::kDataRetainability,
              ts::TimeSeries(-36, std::move(values)));
    store.put(net::ElementId{e}, kpi::KpiId::kDataThroughput,
              ts::TimeSeries(0, {1.5, ts::kMissing, 3.25}, 1440));
  }
  return store;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("litmus_snap_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(SnapshotTest, RoundTripIsBitExact) {
  const SeriesStore original = sample_store();
  const std::string snap = path("a.litmus-snap");
  save_series_snapshot(snap, original, 0xfeedu, 12345u, 777u);

  SeriesStore loaded;
  std::string why;
  EXPECT_EQ(load_series_snapshot(snap, loaded, 0xfeedu, 12345u, &why),
            SnapshotLoad::kLoaded)
      << why;
  expect_stores_identical(original, loaded);
}

TEST_F(SnapshotTest, MissingFileReportsMissing) {
  SeriesStore store;
  EXPECT_EQ(load_series_snapshot(path("absent.litmus-snap"), store, 1, 1),
            SnapshotLoad::kMissing);
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(SnapshotTest, FingerprintMismatchIsStale) {
  const std::string snap = path("fp.litmus-snap");
  save_series_snapshot(snap, sample_store(), 0xAAAAu, 100u, 777u);
  SeriesStore store;
  std::string why;
  EXPECT_EQ(load_series_snapshot(snap, store, 0xBBBBu, 100u, &why),
            SnapshotLoad::kStale);
  EXPECT_EQ(store.size(), 0u);  // store untouched
  EXPECT_FALSE(why.empty());
}

TEST_F(SnapshotTest, SourceSizeMismatchIsStale) {
  const std::string snap = path("sz.litmus-snap");
  save_series_snapshot(snap, sample_store(), 0xAAAAu, 100u, 777u);
  SeriesStore store;
  EXPECT_EQ(load_series_snapshot(snap, store, 0xAAAAu, 101u),
            SnapshotLoad::kStale);
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(SnapshotTest, BadMagicIsStale) {
  const std::string snap = path("magic.litmus-snap");
  save_series_snapshot(snap, sample_store(), 1u, 1u, 777u);
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');  // clobber first magic byte
  }
  SeriesStore store;
  std::string why;
  EXPECT_EQ(load_series_snapshot(snap, store, 1u, 1u, &why),
            SnapshotLoad::kStale);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(why.empty());
}

TEST_F(SnapshotTest, CorruptPayloadFailsChecksum) {
  const std::string snap = path("corrupt.litmus-snap");
  save_series_snapshot(snap, sample_store(), 1u, 1u, 777u);
  {
    // Flip one payload byte past the 64-byte header.
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(80);
    const int c = f.get();
    f.seekp(80);
    f.put(static_cast<char>(c ^ 0x40));
  }
  SeriesStore store;
  std::string why;
  EXPECT_EQ(load_series_snapshot(snap, store, 1u, 1u, &why),
            SnapshotLoad::kStale);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(why.empty());
}

TEST_F(SnapshotTest, TruncatedFileIsStale) {
  const std::string snap = path("trunc.litmus-snap");
  save_series_snapshot(snap, sample_store(), 1u, 1u, 777u);
  const auto full = fs::file_size(snap);
  fs::resize_file(snap, full / 2);
  SeriesStore store;
  EXPECT_EQ(load_series_snapshot(snap, store, 1u, 1u), SnapshotLoad::kStale);
  EXPECT_EQ(store.size(), 0u);

  fs::resize_file(snap, 10);  // not even a header
  EXPECT_EQ(load_series_snapshot(snap, store, 1u, 1u), SnapshotLoad::kStale);
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(SnapshotTest, RewriteRotatesExistingSnapshot) {
  const std::string snap = path("rot.litmus-snap");
  save_series_snapshot(snap, sample_store(), 1u, 1u, 777u);
  save_series_snapshot(snap, sample_store(), 2u, 2u, 888u);
  EXPECT_TRUE(fs::exists(snap + ".old"));
  SeriesStore store;
  EXPECT_EQ(load_series_snapshot(snap, store, 2u, 2u), SnapshotLoad::kLoaded);
}

TEST(SnapshotPath, SixteenHexDigitsPlusSuffix) {
  EXPECT_EQ(snapshot_cache_path("/tmp/cache", 0xdeadbeefu),
            "/tmp/cache/00000000deadbeef.litmus-snap");
  EXPECT_EQ(snapshot_cache_path("cache", 0xffffffffffffffffull),
            "cache/ffffffffffffffff.litmus-snap");
}

TEST_F(SnapshotTest, IngestMissThenHitThenInvalidate) {
  // A little CSV on disk, ingested three times: cold miss (writes the
  // snapshot), warm hit (loads it, bit-identical), then the source is
  // edited and the stale snapshot is bypassed.
  const std::string csv_path = path("series.csv");
  std::string csv = "# element_id, kpi_name, bin, value\n";
  for (int b = -12; b < 12; ++b)
    csv += "7, voice_retainability, " + std::to_string(b) + ", 0.97\n";
  {
    std::ofstream out(csv_path, std::ios::binary);
    out << csv;
  }
  IngestOptions opts;
  opts.snapshot_dir = (dir_ / "cache").string();

  SeriesStore cold;
  const IngestReport r1 = ingest_series_file(csv_path, cold, opts);
  EXPECT_FALSE(r1.from_snapshot);
  EXPECT_EQ(r1.rows, 24u);
  ASSERT_FALSE(r1.snapshot_path.empty());
  EXPECT_TRUE(fs::exists(r1.snapshot_path));

  SeriesStore warm;
  const IngestReport r2 = ingest_series_file(csv_path, warm, opts);
  EXPECT_TRUE(r2.from_snapshot);
  EXPECT_EQ(r2.fingerprint, r1.fingerprint);
  expect_stores_identical(cold, warm);

  // Edit the source: the stat no longer matches, so the source is
  // re-hashed, the fingerprint comparison flags the snapshot stale, and a
  // fresh snapshot replaces it at the same path-keyed location (the old
  // one rotates to ".old").
  csv += "7, voice_retainability, 12, 0.5\n";
  {
    std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
    out << csv;
  }
  SeriesStore edited;
  const IngestReport r3 = ingest_series_file(csv_path, edited, opts);
  EXPECT_FALSE(r3.from_snapshot);
  EXPECT_NE(r3.fingerprint, r1.fingerprint);
  EXPECT_EQ(r3.rows, 25u);
  EXPECT_EQ(r3.snapshot_path, r1.snapshot_path);
  EXPECT_TRUE(fs::exists(r3.snapshot_path));
  EXPECT_TRUE(fs::exists(r3.snapshot_path + ".old"));

  SeriesStore warm2;
  const IngestReport r4 = ingest_series_file(csv_path, warm2, opts);
  EXPECT_TRUE(r4.from_snapshot);
  expect_stores_identical(edited, warm2);
}

TEST_F(SnapshotTest, ReadSnapshotMetaRoundTrip) {
  const std::string snap = path("meta.litmus-snap");
  save_series_snapshot(snap, sample_store(), 0xabcdefu, 4321u, 99887766u);
  const auto meta = read_snapshot_meta(snap);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->fingerprint, 0xabcdefu);
  EXPECT_EQ(meta->source_bytes, 4321u);
  EXPECT_EQ(meta->source_mtime_ns, 99887766u);

  EXPECT_FALSE(read_snapshot_meta(path("absent.litmus-snap")).has_value());
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');  // clobber the magic
  }
  EXPECT_FALSE(read_snapshot_meta(snap).has_value());
}

TEST_F(SnapshotTest, TouchedSourceStillHitsViaFingerprint) {
  // Rewriting the source with byte-identical contents bumps the mtime.
  // The probe falls off the stat-trust shortcut, re-hashes the source,
  // finds the recorded fingerprint still matches, and hits anyway.
  const std::string csv_path = path("series.csv");
  const std::string csv = "5, data_throughput, 0, 12.5\n";
  {
    std::ofstream out(csv_path, std::ios::binary);
    out << csv;
  }
  IngestOptions opts;
  opts.snapshot_dir = (dir_ / "cache").string();

  SeriesStore cold;
  const IngestReport r1 = ingest_series_file(csv_path, cold, opts);
  EXPECT_FALSE(r1.from_snapshot);

  {
    std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
    out << csv;  // same bytes, fresh mtime
  }
  SeriesStore warm;
  const IngestReport r2 = ingest_series_file(csv_path, warm, opts);
  EXPECT_TRUE(r2.from_snapshot);
  EXPECT_EQ(r2.fingerprint, r1.fingerprint);
  expect_stores_identical(cold, warm);

  // The hit also refreshed the recorded source stat in place (when the
  // touch was visible in the mtime at all), so the snapshot header now
  // matches the source again and keeps the same fingerprint; a third
  // ingest hits regardless of which probe path it takes.
  const auto meta = read_snapshot_meta(r2.snapshot_path);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->fingerprint, r1.fingerprint);
  SeriesStore warm2;
  const IngestReport r3 = ingest_series_file(csv_path, warm2, opts);
  EXPECT_TRUE(r3.from_snapshot);
  expect_stores_identical(cold, warm2);
}

TEST_F(SnapshotTest, VerifyEnvForcesRehashButStillHits) {
  const std::string csv_path = path("series.csv");
  {
    std::ofstream out(csv_path, std::ios::binary);
    out << "9, voice_retainability, 3, 0.91\n";
  }
  IngestOptions opts;
  opts.snapshot_dir = (dir_ / "cache").string();

  SeriesStore cold;
  const IngestReport r1 = ingest_series_file(csv_path, cold, opts);
  EXPECT_FALSE(r1.from_snapshot);

  ::setenv("LITMUS_SNAPSHOT_VERIFY", "1", 1);
  SeriesStore warm;
  const IngestReport r2 = ingest_series_file(csv_path, warm, opts);
  ::unsetenv("LITMUS_SNAPSHOT_VERIFY");
  EXPECT_TRUE(r2.from_snapshot);
  EXPECT_EQ(r2.fingerprint, r1.fingerprint);
  expect_stores_identical(cold, warm);
}

TEST_F(SnapshotTest, NoSnapshotWrittenIntoNonEmptyStore) {
  // A snapshot must capture exactly one file's contents; when the caller
  // merges several inputs into one store, caching would conflate them.
  const std::string csv_path = path("series.csv");
  {
    std::ofstream out(csv_path, std::ios::binary);
    out << "3, data_throughput, 0, 9.5\n";
  }
  IngestOptions opts;
  opts.snapshot_dir = (dir_ / "cache").string();

  SeriesStore store;
  store.put(net::ElementId{1}, kpi::KpiId::kVoiceRetainability,
            ts::TimeSeries(0, std::vector<double>{0.5}));
  const IngestReport rep = ingest_series_file(csv_path, store, opts);
  EXPECT_FALSE(rep.from_snapshot);
  EXPECT_FALSE(fs::exists(rep.snapshot_path));
  EXPECT_EQ(store.size(), 2u);  // merged, not replaced
}

}  // namespace
}  // namespace litmus::io
