#include "io/changes.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.h"

namespace litmus::io {
namespace {

TEST(ChangesCsv, ParseEnums) {
  EXPECT_EQ(parse_change_type("software_upgrade"),
            chg::ChangeType::kSoftwareUpgrade);
  EXPECT_EQ(parse_change_type("traffic_move"), chg::ChangeType::kTrafficMove);
  EXPECT_FALSE(parse_change_type("magic").has_value());
  EXPECT_EQ(parse_expectation("no_impact"), chg::Expectation::kNoImpact);
  EXPECT_FALSE(parse_expectation("hope").has_value());
}

TEST(ChangesCsv, LoadBasicRow) {
  std::istringstream in(
      "# header\n"
      "12, config_change, -24, improvement, voice_retainability, "
      "gold.radio_link_failure_timer_ms=4000, RLF timer tuning\n");
  chg::ChangeLog log;
  EXPECT_EQ(load_changes_csv(in, log), 1u);
  ASSERT_EQ(log.size(), 1u);
  const auto& r = log.all()[0];
  EXPECT_EQ(r.element, net::ElementId{12});
  EXPECT_EQ(r.type, chg::ChangeType::kConfigChange);
  EXPECT_EQ(r.bin, -24);
  EXPECT_EQ(r.expectation, chg::Expectation::kImprovement);
  EXPECT_EQ(r.target_kpi, kpi::KpiId::kVoiceRetainability);
  EXPECT_EQ(r.parameter, "gold.radio_link_failure_timer_ms=4000");
  EXPECT_EQ(r.description, "RLF timer tuning");
  EXPECT_EQ(r.id, 1u);  // log assigns ids
}

TEST(ChangesCsv, MalformedRowsThrow) {
  chg::ChangeLog log;
  std::istringstream short_row("1, config_change, 0\n");
  EXPECT_THROW(load_changes_csv(short_row, log), std::runtime_error);
  std::istringstream bad_type("1, wizardry, 0, no_impact, "
                              "voice_retainability, x, y\n");
  EXPECT_THROW(load_changes_csv(bad_type, log), std::runtime_error);
  std::istringstream bad_kpi("1, config_change, 0, no_impact, happiness, "
                             "x, y\n");
  EXPECT_THROW(load_changes_csv(bad_kpi, log), std::runtime_error);
}

TEST(ChangesCsv, ErrorsNameTheOffendingLine) {
  std::istringstream in(
      "# header\n"
      "1, config_change, 0, no_impact, voice_retainability, x, y\n"
      "2, wizardry, 0, no_impact, voice_retainability, x, y\n");
  chg::ChangeLog log;
  try {
    load_changes_csv(in, log);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_STREQ(e.what(), "changes csv line 3: unknown change type "
                           "'wizardry'");
  }
}

TEST(ChangesCsv, RoundTrip) {
  chg::ChangeLog original;
  chg::ChangeRecord a;
  a.element = net::ElementId{3};
  a.type = chg::ChangeType::kFeatureActivation;
  a.bin = 100;
  a.expectation = chg::Expectation::kImprovement;
  a.target_kpi = kpi::KpiId::kDataRetainability;
  a.parameter = "son=on";
  a.description = "SON pilot";
  original.add(a);
  chg::ChangeRecord b;
  b.element = net::ElementId{9};
  b.type = chg::ChangeType::kTopologyChange;
  b.bin = -50;
  b.parameter = "parent=4";
  original.add(b);

  std::stringstream buf;
  save_changes_csv(buf, original);
  chg::ChangeLog loaded;
  EXPECT_EQ(load_changes_csv(buf, loaded), 2u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.all()[0].parameter, "son=on");
  EXPECT_EQ(loaded.all()[0].description, "SON pilot");
  EXPECT_EQ(loaded.all()[1].element, net::ElementId{9});
  EXPECT_EQ(loaded.all()[1].type, chg::ChangeType::kTopologyChange);
  EXPECT_EQ(loaded.all()[1].bin, -50);
}

}  // namespace
}  // namespace litmus::io
