#include "io/weather.h"

#include <gtest/gtest.h>

#include <sstream>

namespace litmus::io {
namespace {

TEST(WeatherCsv, ParseKinds) {
  EXPECT_EQ(parse_weather_kind("rain"), sim::WeatherKind::kRain);
  EXPECT_EQ(parse_weather_kind("hurricane"), sim::WeatherKind::kHurricane);
  EXPECT_EQ(parse_weather_kind("severe_storm"),
            sim::WeatherKind::kSevereStorm);
  EXPECT_FALSE(parse_weather_kind("drizzle").has_value());
}

TEST(WeatherCsv, LoadBasicEvent) {
  std::istringstream in(
      "# kind, lat, lon, radius_km, start_bin, duration_bins, severity\n"
      "severe_storm, 32.8, -96.8, 120, 432, 48, 3.5\n");
  const auto events = load_weather_csv(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, sim::WeatherKind::kSevereStorm);
  EXPECT_DOUBLE_EQ(events[0].center.lat_deg, 32.8);
  EXPECT_DOUBLE_EQ(events[0].radius_km, 120.0);
  EXPECT_EQ(events[0].start_bin, 432);
  EXPECT_EQ(events[0].end_bin, 480);
  EXPECT_DOUBLE_EQ(events[0].peak_sigma, 3.5);
}

TEST(WeatherCsv, ZeroSeverityKeepsPreset) {
  std::istringstream in("hurricane, 41.0, -74.0, 400, 0, 96, 0\n");
  const auto events = load_weather_csv(in);
  ASSERT_EQ(events.size(), 1u);
  const auto preset =
      sim::make_event(sim::WeatherKind::kHurricane, {41.0, -74.0}, 0, 96);
  EXPECT_DOUBLE_EQ(events[0].peak_sigma, preset.peak_sigma);
  EXPECT_DOUBLE_EQ(events[0].outage_probability,
                   preset.outage_probability);
}

TEST(WeatherCsv, MalformedRowsThrow) {
  std::istringstream bad_kind("tsunami, 1, 1, 10, 0, 5, 1\n");
  EXPECT_THROW(load_weather_csv(bad_kind), std::runtime_error);
  std::istringstream short_row("rain, 1, 1, 10\n");
  EXPECT_THROW(load_weather_csv(short_row), std::runtime_error);
  std::istringstream bad_duration("rain, 1, 1, 10, 0, -5, 1\n");
  EXPECT_THROW(load_weather_csv(bad_duration), std::runtime_error);
  std::istringstream bad_radius("rain, 1, 1, 0, 0, 5, 1\n");
  EXPECT_THROW(load_weather_csv(bad_radius), std::runtime_error);
}

TEST(WeatherCsv, RoundTrip) {
  std::vector<sim::WeatherEvent> events;
  events.push_back(sim::make_event(sim::WeatherKind::kWind, {40.0, -75.0},
                                   100, 72));
  events.push_back(sim::make_event(sim::WeatherKind::kRain, {33.0, -84.0},
                                   -50, 24));
  std::stringstream buf;
  save_weather_csv(buf, events);
  const auto loaded = load_weather_csv(buf);
  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded[i].kind, events[i].kind);
    EXPECT_NEAR(loaded[i].center.lat_deg, events[i].center.lat_deg, 1e-3);
    EXPECT_EQ(loaded[i].start_bin, events[i].start_bin);
    EXPECT_EQ(loaded[i].end_bin, events[i].end_bin);
    EXPECT_NEAR(loaded[i].peak_sigma, events[i].peak_sigma, 1e-2);
  }
}

TEST(WeatherCsv, LoadedEventsDriveWeatherFactor) {
  std::istringstream in("wind, 41.0, -74.0, 150, 10, 20, 2.0\n");
  const sim::WeatherFactor factor(load_weather_csv(in));
  net::NetworkElement e;
  e.id = net::ElementId{1};
  e.kind = net::ElementKind::kNodeB;
  e.location = {41.0, -74.0};
  EXPECT_LT(factor.quality_effect(e, 20), 0.0);
  EXPECT_DOUBLE_EQ(factor.quality_effect(e, 5), 0.0);
}

}  // namespace
}  // namespace litmus::io
