#include "io/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace litmus::io {
namespace {

TEST(Csv, SplitTrimsFields) {
  const auto f = split_csv_line(" a , b,c ,  d\t");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
  EXPECT_EQ(f[3], "d");
}

TEST(Csv, SplitKeepsEmptyFields) {
  const auto f = split_csv_line("a,,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "");
}

TEST(Csv, ReadSkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\n1,2\n  \n# more\n3,4\n");
  auto r1 = read_csv_row(in);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ((*r1)[0], "1");
  auto r2 = read_csv_row(in);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ((*r2)[1], "4");
  EXPECT_FALSE(read_csv_row(in).has_value());
}

TEST(Csv, WriteRow) {
  std::ostringstream out;
  write_csv_row(out, {"x", "y", "z"});
  EXPECT_EQ(out.str(), "x,y,z\n");
}

TEST(Csv, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-0.25"), -0.25);
  EXPECT_FALSE(parse_double("3.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Csv, ParseDoubleOrMissing) {
  EXPECT_DOUBLE_EQ(parse_double_or_missing("1.5"), 1.5);
  EXPECT_TRUE(std::isnan(parse_double_or_missing("nan")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("NA")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("junk")));
}

TEST(CsvReader, TracksPhysicalLineNumbers) {
  std::istringstream in("# header\n\n1,2\n  \n# more\n3,4\n");
  CsvReader reader(in, "test csv");
  EXPECT_EQ(reader.line(), 0u);
  auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(reader.line(), 3u);  // two skipped lines before the first row
  auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(reader.line(), 6u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(CsvReader, FailReportsSourceAndLine) {
  std::istringstream in("# header\nok,row\nbad\n");
  CsvReader reader(in, "test csv");
  (void)reader.next();
  (void)reader.next();
  try {
    reader.fail("bad field 'x'");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_STREQ(e.what(), "test csv line 3: bad field 'x'");
  }
}

TEST(CsvReader, RequireFieldsThrowsOnColumnMismatch) {
  std::istringstream in("a,b,c\n");
  CsvReader reader(in, "test csv");
  const auto row = reader.next();
  ASSERT_TRUE(row.has_value());
  EXPECT_NO_THROW(reader.require_fields(*row, 3));
  try {
    reader.require_fields(*row, 4);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_STREQ(e.what(), "test csv line 1: expected 4 fields, got 3");
  }
}

TEST(Csv, ParseIntStrict) {
  EXPECT_EQ(*parse_int("-42"), -42);
  EXPECT_EQ(*parse_int("7"), 7);
  EXPECT_FALSE(parse_int("7.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

}  // namespace
}  // namespace litmus::io
