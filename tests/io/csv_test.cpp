#include "io/csv.h"

#include <gtest/gtest.h>

#include <charconv>
#include <cmath>
#include <sstream>

namespace litmus::io {
namespace {

TEST(Csv, SplitTrimsFields) {
  const auto f = split_csv_line(" a , b,c ,  d\t");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
  EXPECT_EQ(f[3], "d");
}

TEST(Csv, SplitKeepsEmptyFields) {
  const auto f = split_csv_line("a,,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "");
}

TEST(CsvReader, SkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\n1,2\n  \n# more\n3,4\n");
  CsvReader reader(in, "test csv");
  const auto* r1 = reader.next();
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ((*r1)[0], "1");
  const auto* r2 = reader.next();
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ((*r2)[1], "4");
  EXPECT_EQ(reader.next(), nullptr);
}

TEST(Csv, WriteRow) {
  std::ostringstream out;
  write_csv_row(out, {"x", "y", "z"});
  EXPECT_EQ(out.str(), "x,y,z\n");
}

TEST(Csv, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-0.25"), -0.25);
  EXPECT_FALSE(parse_double("3.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Csv, ParseDoubleOrMissing) {
  EXPECT_DOUBLE_EQ(parse_double_or_missing("1.5"), 1.5);
  EXPECT_TRUE(std::isnan(parse_double_or_missing("nan")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("NA")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("junk")));
}

TEST(Csv, ParseDoubleOrMissingCaseAndWhitespaceVariants) {
  // Upper/mixed-case and padded spellings must behave exactly like the
  // canonical "nan" — the trim is the same one field splitting applies.
  EXPECT_TRUE(std::isnan(parse_double_or_missing("NAN")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("NaN")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing(" nan ")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("\tNA ")));
  EXPECT_TRUE(std::isnan(parse_double_or_missing("na")));
  EXPECT_DOUBLE_EQ(parse_double_or_missing("  2.5\t"), 2.5);
}

TEST(CsvReader, TracksPhysicalLineNumbers) {
  std::istringstream in("# header\n\n1,2\n  \n# more\n3,4\n");
  CsvReader reader(in, "test csv");
  EXPECT_EQ(reader.line(), 0u);
  const auto* r1 = reader.next();
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(reader.line(), 3u);  // two skipped lines before the first row
  const auto* r2 = reader.next();
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(reader.line(), 6u);
  EXPECT_EQ(reader.next(), nullptr);
}

TEST(CsvReader, FailReportsSourceAndLine) {
  std::istringstream in("# header\nok,row\nbad\n");
  CsvReader reader(in, "test csv");
  (void)reader.next();
  (void)reader.next();
  try {
    reader.fail("bad field 'x'");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_STREQ(e.what(), "test csv line 3: bad field 'x'");
  }
}

TEST(CsvReader, RequireFieldsThrowsOnColumnMismatch) {
  std::istringstream in("a,b,c\n");
  CsvReader reader(in, "test csv");
  const auto* row = reader.next();
  ASSERT_NE(row, nullptr);
  EXPECT_NO_THROW(reader.require_fields(*row, 3));
  try {
    reader.require_fields(*row, 4);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_STREQ(e.what(), "test csv line 1: expected 4 fields, got 3");
  }
}

TEST(Csv, ParseDoubleFastPathMatchesFromChars) {
  // parse_double's short-decimal fast path must agree bit-for-bit with
  // from_chars (the reference) on every input it accepts.
  const auto reference = [](std::string_view s) -> std::optional<double> {
    double v = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size())
      return std::nullopt;
    return v;
  };
  const char* cases[] = {
      "0",       "-0",        "0.0",          "-0.0",
      "1",       "-1",        "0.973245",     "-0.973245",
      "12345.6789",           "0.000000000000097",
      "999999999999999",      "0.999999999999999",
      "1.",      ".5",        "-.5",          ".",
      "-",       "1e3",       "1.5e-7",       "nan",
      "inf",     "0007",      "1..2",         "1.2.3",
      "123456789012345678901", "+1",          "",
  };
  for (const char* c : cases) {
    const auto got = parse_double(c);
    const auto want = reference(c);
    ASSERT_EQ(got.has_value(), want.has_value()) << "input [" << c << "]";
    if (got && !std::isnan(*got)) {
      EXPECT_EQ(*got, *want) << "input [" << c << "]";
      EXPECT_EQ(std::signbit(*got), std::signbit(*want))
          << "input [" << c << "]";
    }
  }
}

TEST(Csv, ParseIntStrict) {
  EXPECT_EQ(*parse_int("-42"), -42);
  EXPECT_EQ(*parse_int("7"), 7);
  EXPECT_FALSE(parse_int("7.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

}  // namespace
}  // namespace litmus::io
