// Integration tests: the full pipeline — synthetic national network,
// telemetry generator with real external factors, control-group selection,
// assessment, and go/no-go — exercised the way the examples and benches use
// it. These mirror the paper's case studies (Section 5) as assertions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cellnet/builder.h"
#include "litmus/assessor.h"
#include "litmus/did.h"
#include "litmus/study_only.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"
#include "simkit/traffic.h"
#include "simkit/weather.h"

namespace litmus {
namespace {

core::SeriesProvider provider_of(sim::KpiGenerator& gen) {
  return [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s,
                std::size_t n) { return gen.kpi_series(e, k, s, n); };
}

TEST(EndToEnd, CaseStudy1FeatureDegradationDetected) {
  // Fig 8: a feature activation at one RNC subtly degrades service; the
  // control RNCs are clean. Litmus must flag the degradation.
  net::Topology topo = net::build_small_region(net::Region::kSoutheast, 611,
                                               /*rncs=*/7, /*nodebs=*/4);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  sim::UpstreamEvent effect;
  effect.source = rncs[0];
  effect.start_bin = 0;
  effect.sigma_shift = -0.9;
  sim::KpiGenerator gen(topo, {.seed = 611});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{effect}));

  core::Assessor assessor(topo, provider_of(gen));
  const std::vector<net::ElementId> study{rncs[0]};
  const std::vector<net::ElementId> controls(rncs.begin() + 1, rncs.end());
  const auto a = assessor.assess(study, controls,
                                 kpi::KpiId::kDroppedVoiceCallRatio, 0);
  EXPECT_EQ(a.summary.verdict, core::Verdict::kDegradation);
}

TEST(EndToEnd, CaseStudy3HurricaneSonRelativeImprovement) {
  // Fig 10: during a hurricane every tower degrades absolutely; SON towers
  // degrade less. Study-only must read degradation; Litmus must read the
  // relative improvement.
  net::Topology topo = net::build_small_region(net::Region::kNortheast, 613,
                                               /*rncs=*/3, /*nodebs=*/10);
  const auto towers = topo.of_kind(net::ElementKind::kNodeB);
  std::vector<net::ElementId> study, controls;
  for (const auto t : towers)
    (topo.get(t).config.son_enabled ? study : controls).push_back(t);
  ASSERT_GE(study.size(), 3u);
  ASSERT_GE(controls.size(), 3u);

  sim::WeatherEvent sandy = sim::make_event(
      sim::WeatherKind::kHurricane, topo.get(towers[0]).location, 0, 4 * 24);
  sandy.outage_probability = 0.0;
  std::vector<sim::UpstreamEvent> mitigations;
  for (const auto t : study) {
    sim::UpstreamEvent m;
    m.source = t;
    m.start_bin = 0;
    m.end_bin = 6 * 24;
    m.sigma_shift = +1.2;
    mitigations.push_back(m);
  }
  sim::KpiGenerator gen(topo, {.seed = 613});
  gen.add_factor(std::make_shared<sim::WeatherFactor>(
      std::vector<sim::WeatherEvent>{sandy}));
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(topo, mitigations));

  core::AssessmentConfig cfg;
  cfg.before_bins = 10 * 24;
  cfg.after_bins = 5 * 24;
  core::Assessor assessor(topo, provider_of(gen), cfg);
  const auto a = assessor.assess(study, controls,
                                 kpi::KpiId::kVoiceAccessibility, 0);
  EXPECT_EQ(a.summary.verdict, core::Verdict::kImprovement);

  // Study-only view: absolute degradation at SON towers.
  const core::StudyOnlyAnalyzer study_only;
  std::size_t degraded = 0;
  for (const auto s : study) {
    const auto w = assessor.windows_for(s, controls,
                                        kpi::KpiId::kVoiceAccessibility, 0);
    if (study_only.assess(w, kpi::KpiId::kVoiceAccessibility).verdict ==
        core::Verdict::kDegradation)
      ++degraded;
  }
  EXPECT_GT(degraded, study.size() / 2);
}

TEST(EndToEnd, CaseStudy4HolidayFalsePositiveAvoided) {
  // Fig 11: a holiday lifts data retainability everywhere right after a
  // neutral change; study-only reads improvement, Litmus reads no impact.
  net::Topology topo = net::build_small_region(net::Region::kSoutheast, 617,
                                               /*rncs=*/8, /*nodebs=*/4);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  sim::HolidayWindow holiday;
  holiday.start_bin = 3 * 24;
  holiday.end_bin = 13 * 24;
  holiday.load_multiplier = 0.6;  // lighter load -> fewer drops
  sim::KpiGenerator gen(topo, {.seed = 617, .congestion_threshold = 0.9});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::TrafficEventFactor>(
      std::vector<sim::HolidayWindow>{holiday},
      std::vector<sim::VenueEvent>{}));

  core::Assessor assessor(topo, provider_of(gen));
  const std::vector<net::ElementId> study{rncs[0], rncs[1], rncs[2]};
  const std::vector<net::ElementId> controls(rncs.begin() + 3, rncs.end());
  const auto a =
      assessor.assess(study, controls, kpi::KpiId::kDataRetainability, 0);
  EXPECT_EQ(a.summary.verdict, core::Verdict::kNoImpact);

  const core::StudyOnlyAnalyzer study_only;
  std::size_t fooled = 0;
  for (const auto s : study) {
    const auto w =
        assessor.windows_for(s, controls, kpi::KpiId::kDataRetainability, 0);
    if (study_only.assess(w, kpi::KpiId::kDataRetainability).verdict ==
        core::Verdict::kImprovement)
      ++fooled;
  }
  EXPECT_GT(fooled, 0u);
}

TEST(EndToEnd, SelectionPlusAssessmentOnNationalNetwork) {
  net::BuildSpec spec;
  spec.seed = 619;
  net::Topology topo = net::NetworkBuilder(spec).build();
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  const net::ElementId study_rnc = rncs[0];

  sim::UpstreamEvent effect;
  effect.source = study_rnc;
  effect.start_bin = 0;
  effect.sigma_shift = +1.5;
  sim::KpiGenerator gen(topo, {.seed = 619});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::FoliageFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{effect}));

  core::Assessor assessor(topo, provider_of(gen));
  const std::vector<net::ElementId> study{study_rnc};
  const auto a = assessor.assess_with_selection(
      study,
      core::all_of({core::same_region(), core::same_technology()}),
      kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_GE(a.control_group.size(), 2u);
  EXPECT_EQ(a.summary.verdict, core::Verdict::kImprovement);

  const core::FfaDecision d = assessor.ffa_decision(
      study, a.control_group,
      std::vector<kpi::KpiId>{kpi::KpiId::kVoiceRetainability,
                              kpi::KpiId::kDataRetainability},
      0);
  EXPECT_TRUE(d.go);
}

TEST(EndToEnd, OutagesDoNotBreakAssessment) {
  // A storm knocks some towers out (missing data); the assessment of an
  // unrelated neutral change must still complete and stay no-impact.
  net::Topology topo = net::build_small_region(net::Region::kSouthwest, 621,
                                               /*rncs=*/5, /*nodebs=*/6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  sim::WeatherEvent storm = sim::make_event(
      sim::WeatherKind::kSevereStorm, topo.get(rncs[0]).location, -3 * 24,
      2 * 24);
  storm.outage_probability = 0.3;
  sim::KpiGenerator gen(topo, {.seed = 621});
  gen.add_factor(std::make_shared<sim::WeatherFactor>(
      std::vector<sim::WeatherEvent>{storm}));

  core::Assessor assessor(topo, provider_of(gen));
  const std::vector<net::ElementId> study{rncs[0]};
  const std::vector<net::ElementId> controls(rncs.begin() + 1, rncs.end());
  const auto a = assessor.assess(study, controls,
                                 kpi::KpiId::kVoiceRetainability, 0);
  // The point under test: missing bins from outages must not break the
  // pipeline or conjure a material effect. (The storm sits closer to the
  // study RNC than to the controls, so a borderline sub-0.35-sigma relative
  // reading is legitimate; a large one would be a bug.)
  EXPECT_FALSE(a.per_element[0].outcome.degenerate);
  const double effect_sigma =
      a.per_element[0].outcome.effect_kpi_units /
      kpi::info(kpi::KpiId::kVoiceRetainability).typical_noise;
  EXPECT_LT(std::abs(effect_sigma), 0.35);
  EXPECT_NE(a.summary.verdict, core::Verdict::kDegradation);
}

TEST(EndToEnd, ThreeAlgorithmsAgreeOnCleanStrongEffect) {
  net::Topology topo = net::build_small_region(net::Region::kMidwest, 623,
                                               /*rncs=*/6, /*nodebs=*/4);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  sim::UpstreamEvent effect;
  effect.source = rncs[0];
  effect.start_bin = 0;
  effect.sigma_shift = +2.5;
  sim::KpiGenerator gen(topo, {.seed = 623});
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{effect}));

  core::Assessor assessor(topo, provider_of(gen));
  const std::vector<net::ElementId> controls(rncs.begin() + 1, rncs.end());
  const auto w = assessor.windows_for(rncs[0], controls,
                                      kpi::KpiId::kVoiceRetainability, 0);
  const core::StudyOnlyAnalyzer so;
  const core::DiDAnalyzer did;
  const core::RobustSpatialRegression litmus_alg;
  EXPECT_EQ(so.assess(w, kpi::KpiId::kVoiceRetainability).verdict,
            core::Verdict::kImprovement);
  EXPECT_EQ(did.assess(w, kpi::KpiId::kVoiceRetainability).verdict,
            core::Verdict::kImprovement);
  EXPECT_EQ(litmus_alg.assess(w, kpi::KpiId::kVoiceRetainability).verdict,
            core::Verdict::kImprovement);
}

}  // namespace
}  // namespace litmus
