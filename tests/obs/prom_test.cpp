// Tests for the Prometheus text-exposition translation (obs/promexport.h):
// name sanitization and deterministic collision suffixes, golden counter /
// gauge / histogram families, cumulative bucket monotonicity, the
// mandatory +Inf bucket equalling _count, and the export-bucket cap.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/promexport.h"

namespace litmus::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

bool contains_line(const std::string& text, const std::string& wanted) {
  for (const auto& line : lines_of(text))
    if (line == wanted) return true;
  return false;
}

TEST(PromSanitizeTest, PrefixesAndReplacesIllegalCharacters) {
  EXPECT_EQ(prom_sanitize("panel_cache.hits"), "litmus_panel_cache_hits");
  EXPECT_EQ(prom_sanitize("serve.requests.not_found"),
            "litmus_serve_requests_not_found");
  EXPECT_EQ(prom_sanitize("a-b c/d"), "litmus_a_b_c_d");
  EXPECT_EQ(prom_sanitize(""), "litmus_");
}

TEST(PromExportTest, CounterGoldenText) {
  MetricsSnapshot s;
  s.counters.emplace_back("panel_cache.hits", 42u);
  const std::string text = prometheus_text(s);
  EXPECT_TRUE(contains_line(
      text, "# HELP litmus_panel_cache_hits_total litmus metric "
            "panel_cache.hits"))
      << text;
  EXPECT_TRUE(
      contains_line(text, "# TYPE litmus_panel_cache_hits_total counter"))
      << text;
  EXPECT_TRUE(contains_line(text, "litmus_panel_cache_hits_total 42"))
      << text;
}

TEST(PromExportTest, GaugeGoldenText) {
  MetricsSnapshot s;
  s.gauges.emplace_back("ingest.mb_per_s", 1.5);
  const std::string text = prometheus_text(s);
  EXPECT_TRUE(contains_line(text, "# TYPE litmus_ingest_mb_per_s gauge"))
      << text;
  EXPECT_TRUE(contains_line(text, "litmus_ingest_mb_per_s 1.5")) << text;
}

TEST(PromExportTest, HistogramRendersCumulativeBucketsSumAndCount) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(4.0);
  h.record(100.0);
  MetricsSnapshot s;
  s.histograms.emplace_back("litmus.iter_us", h.snapshot());
  const std::string text = prometheus_text(s);

  EXPECT_TRUE(contains_line(text, "# TYPE litmus_litmus_iter_us histogram"))
      << text;
  EXPECT_TRUE(contains_line(text, "litmus_litmus_iter_us_count 4")) << text;
  EXPECT_TRUE(contains_line(text, "litmus_litmus_iter_us_sum 107")) << text;
  EXPECT_TRUE(
      contains_line(text, "litmus_litmus_iter_us_bucket{le=\"+Inf\"} 4"))
      << text;

  // Every explicit bucket line parses, bounds ascend, cumulative counts
  // are monotone, and no explicit bucket exceeds _count.
  double prev_bound = -std::numeric_limits<double>::infinity();
  std::uint64_t prev_cum = 0;
  std::size_t explicit_buckets = 0;
  for (const auto& line : lines_of(text)) {
    const std::string prefix = "litmus_litmus_iter_us_bucket{le=\"";
    if (line.rfind(prefix, 0) != 0 || line.find("+Inf") != std::string::npos)
      continue;
    ++explicit_buckets;
    const auto close = line.find("\"}");
    ASSERT_NE(close, std::string::npos) << line;
    const double bound = std::stod(line.substr(prefix.size()));
    const std::uint64_t cum = std::stoull(line.substr(close + 2));
    EXPECT_GT(bound, prev_bound) << line;
    EXPECT_GE(cum, prev_cum) << line;
    EXPECT_LE(cum, 4u) << line;
    prev_bound = bound;
    prev_cum = cum;
  }
  EXPECT_GE(explicit_buckets, 3u) << text;  // 4 distinct values recorded
  EXPECT_EQ(prev_cum, 4u) << "last explicit bucket must reach _count";
}

TEST(PromExportTest, EmptyHistogramStillEmitsInfBucket) {
  Histogram h;
  MetricsSnapshot s;
  s.histograms.emplace_back("idle", h.snapshot());
  const std::string text = prometheus_text(s);
  EXPECT_TRUE(contains_line(text, "litmus_idle_bucket{le=\"+Inf\"} 0"))
      << text;
  EXPECT_TRUE(contains_line(text, "litmus_idle_count 0")) << text;
  EXPECT_TRUE(contains_line(text, "litmus_idle_sum 0")) << text;
}

TEST(PromExportTest, SnapshotBucketListIsCappedAndMonotone) {
  Histogram h;
  // Spread observations over far more raw buckets than the export cap.
  for (int i = 0; i < 400; ++i)
    h.record(std::pow(1.21, i));  // ~400 distinct log-linear buckets
  const HistogramSnapshot s = h.snapshot();
  ASSERT_FALSE(s.buckets.empty());
  EXPECT_LE(s.buckets.size(), Histogram::kMaxExportBuckets);
  for (std::size_t i = 1; i < s.buckets.size(); ++i) {
    EXPECT_GT(s.buckets[i].upper_bound, s.buckets[i - 1].upper_bound);
    EXPECT_GE(s.buckets[i].cumulative, s.buckets[i - 1].cumulative);
  }
  // Coalescing drops intermediate points, never tail mass: the last
  // exported point still accounts for every observation.
  EXPECT_EQ(s.buckets.back().cumulative, s.count);
}

TEST(PromExportTest, NegativeObservationsKeepBoundsAscending) {
  Histogram h;
  h.record(-8.0);
  h.record(-1.0);
  h.record(0.0);
  h.record(3.0);
  const HistogramSnapshot s = h.snapshot();
  ASSERT_GE(s.buckets.size(), 3u);
  for (std::size_t i = 1; i < s.buckets.size(); ++i)
    EXPECT_GT(s.buckets[i].upper_bound, s.buckets[i - 1].upper_bound);
  EXPECT_EQ(s.buckets.back().cumulative, 4u);
  EXPECT_LT(s.buckets.front().upper_bound, 0.0);
}

TEST(PromExportTest, CollidingNamesGetDeterministicSuffixes) {
  // All three sanitize to litmus_a_b; the first claimant keeps the name,
  // later ones gain _2, _3 in exposition order.
  MetricsSnapshot s;
  s.gauges.emplace_back("a.b", 1.0);
  s.gauges.emplace_back("a/b", 2.0);
  s.gauges.emplace_back("a b", 3.0);
  const std::string text = prometheus_text(s);
  EXPECT_TRUE(contains_line(text, "litmus_a_b 1")) << text;
  EXPECT_TRUE(contains_line(text, "litmus_a_b_2 2")) << text;
  EXPECT_TRUE(contains_line(text, "litmus_a_b_3 3")) << text;
  // Deterministic: rendering twice gives byte-identical output.
  EXPECT_EQ(text, prometheus_text(s));
}

TEST(PromExportTest, CounterTotalSuffixCollisionIsAlsoResolved) {
  // The counter's conventional _total suffix can itself collide with a
  // sanitized gauge name; the table resolves it the same way.
  MetricsSnapshot s;
  s.counters.emplace_back("a.b", 1u);          // litmus_a_b_total
  s.gauges.emplace_back("a.b_total", 2.0);     // litmus_a_b_total too
  const std::string text = prometheus_text(s);
  EXPECT_TRUE(contains_line(text, "litmus_a_b_total 1")) << text;
  EXPECT_TRUE(contains_line(text, "litmus_a_b_total_2 2")) << text;
}

TEST(PromExportTest, NonFiniteGaugesRenderPrometheusSpellings) {
  MetricsSnapshot s;
  s.gauges.emplace_back("weird.nan", std::nan(""));
  s.gauges.emplace_back("weird.inf",
                        std::numeric_limits<double>::infinity());
  const std::string text = prometheus_text(s);
  EXPECT_TRUE(contains_line(text, "litmus_weird_nan NaN")) << text;
  EXPECT_TRUE(contains_line(text, "litmus_weird_inf +Inf")) << text;
}

}  // namespace
}  // namespace litmus::obs
