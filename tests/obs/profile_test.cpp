// Tests for the profiling substrate: span ring wrap/drop accounting, the
// thread-name registry, cross-thread span parentage through the worker
// pool, the Chrome-trace write/parse round trip, and trace summarization.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrometrace.h"
#include "obs/json.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parallel/pool.h"

namespace litmus::obs {
namespace {

TEST(SpanRingSetTest, WrapOverwritesOldestAndCountsDrops) {
  SpanRingSet rings(/*capacity_per_thread=*/8);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    SpanRecord rec;
    rec.id = i;
    rec.name = "wrap";
    rec.start_ns = i * 100;
    rings.append(rec);
  }
  const auto drain = rings.collect();
  EXPECT_EQ(drain.dropped, 12u);  // 20 appended into 8 slots
  ASSERT_EQ(drain.spans.size(), 8u);
  // The ring keeps the most recent window, oldest first.
  for (std::size_t i = 0; i < drain.spans.size(); ++i)
    EXPECT_EQ(drain.spans[i].id, 13u + i);

  rings.clear();
  const auto empty = rings.collect();
  EXPECT_EQ(empty.spans.size(), 0u);
  EXPECT_EQ(empty.dropped, 0u);
}

TEST(SpanRingSetTest, CollectIsNonConsuming) {
  SpanRingSet rings(8);
  SpanRecord rec;
  rec.id = 1;
  rec.name = "once";
  rings.append(rec);
  EXPECT_EQ(rings.collect().spans.size(), 1u);
  EXPECT_EQ(rings.collect().spans.size(), 1u);  // still there
}

#if LITMUS_OBS_ENABLED  // these record through ScopedSpan, a no-op when off

TEST(ProfileTest, TracerReportsDropsFromTinyRing) {
  Tracer tracer(/*ring_capacity=*/4);
  tracer.start();
  for (int i = 0; i < 10; ++i) ScopedSpan span("tiny", tracer);
  tracer.stop();
  EXPECT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

#endif  // LITMUS_OBS_ENABLED

TEST(ProfileTest, ThreadNameRegistryTracksAndReplaces) {
  set_thread_name("profile-test-main");
  std::uint32_t other_index = 0;
  std::thread t([&] {
    other_index = thread_index();
    set_thread_name("profile-test-helper");
  });
  t.join();

  auto index_of = [](const std::string& want) -> std::int64_t {
    for (const auto& [index, name] : thread_names())
      if (name == want) return index;
    return -1;
  };
  EXPECT_EQ(index_of("profile-test-main"), thread_index());
  EXPECT_EQ(index_of("profile-test-helper"), other_index);
  EXPECT_NE(index_of("profile-test-main"), index_of("profile-test-helper"));

  set_thread_name("profile-test-renamed");  // replaces, never duplicates
  EXPECT_EQ(index_of("profile-test-main"), -1);
  EXPECT_EQ(index_of("profile-test-renamed"), thread_index());
}

#if LITMUS_OBS_ENABLED  // these record through ScopedSpan, a no-op when off

// Satellite of the cross-thread profiling layer: spans recorded on pool
// workers must nest under the span that submitted the work, carry unique
// ids, and never interleave within a thread (RAII stack discipline).
TEST(ProfileTest, PoolWorkerSpansNestUnderSubmittingSpan) {
  par::set_threads(4);
  Tracer tracer;
  tracer.start();
  std::uint64_t submit_id = 0;
  {
    ScopedSpan submit("hammer.submit", tracer);
    submit_id = current_span_id();
    ASSERT_NE(submit_id, 0u);
    for (int round = 0; round < 25; ++round) {
      par::parallel_for(64, [&](std::size_t) {
        ScopedSpan item("hammer.item", tracer);
        volatile unsigned sink = 0;
        for (unsigned k = 0; k < 50; ++k) sink += k;
      });
    }
  }
  tracer.stop();
  const std::vector<SpanRecord> spans = tracer.spans();
  par::set_threads(0);
  EXPECT_EQ(tracer.dropped(), 0u);

  std::set<std::uint64_t> ids;
  std::set<std::uint32_t> threads_seen;
  std::size_t items = 0;
  for (const SpanRecord& s : spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
    threads_seen.insert(s.thread);
    if (std::string(s.name) == "hammer.item") {
      ++items;
      // Every worker-side span hangs off the submitting span, even though
      // it ran on a different thread with its own parent chain.
      EXPECT_EQ(s.parent, submit_id);
    } else {
      ASSERT_STREQ(s.name, "hammer.submit");
      EXPECT_EQ(s.parent, 0u);
      EXPECT_EQ(s.id, submit_id);
    }
  }
  EXPECT_EQ(items, 25u * 64u);
  // 64 items across 4 chunks: the caller runs chunk 0 and workers the
  // rest, so spans must land on more than one thread.
  EXPECT_GE(threads_seen.size(), 2u);

  // Within a thread spans obey stack discipline: any two either nest or
  // are disjoint — partial overlap would mean interleaved open/close.
  for (const std::uint32_t tid : threads_seen) {
    std::vector<const SpanRecord*> mine;
    for (const SpanRecord& s : spans)
      if (s.thread == tid) mine.push_back(&s);  // already start-sorted
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const std::uint64_t a_end = mine[i]->start_ns + mine[i]->duration_ns;
      for (std::size_t j = i + 1; j < mine.size(); ++j) {
        if (mine[j]->start_ns >= a_end) break;  // disjoint from here on
        EXPECT_LE(mine[j]->start_ns + mine[j]->duration_ns, a_end)
            << "spans " << mine[i]->id << " and " << mine[j]->id
            << " partially overlap on thread " << tid;
      }
    }
  }
}

TEST(ProfileTest, SampledModeThinsDeterministically) {
  Tracer tracer;
  TraceConfig config;
  config.mode = TraceMode::kSampled;
  config.sample_every = 4;
  tracer.start(config);
  for (int i = 0; i < 100; ++i) ScopedSpan span("sampled", tracer);
  tracer.stop();
  // The per-thread tick keeps exactly 1 in 4 of 100 consecutive opens,
  // whatever phase the counter started at.
  EXPECT_EQ(tracer.spans().size(), 25u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

#endif  // LITMUS_OBS_ENABLED

TEST(ChromeTraceTest, WriteParseRoundTripPreservesSpans) {
  std::vector<SpanRecord> spans(3);
  spans[0] = {/*id=*/1, /*parent=*/0, "outer", /*start_ns=*/0,
              /*duration_ns=*/10'000'000, /*thread=*/0};
  spans[1] = {2, 1, "inner", 1'000'000, 2'000'000, 0};
  spans[2] = {3, 1, "task", 3'000'000, 4'000'000, 1};
  const std::vector<std::pair<std::uint32_t, std::string>> names = {
      {0, "main"}, {1, "worker"}};

  std::ostringstream os;
  write_chrome_trace(os, spans, /*epoch_ns=*/123456789, names,
                     /*dropped_spans=*/7);

  std::string error;
  const auto doc = parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto parsed = parse_trace_events(*doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  ASSERT_EQ(parsed->events.size(), 3u);
  ASSERT_EQ(parsed->thread_names.size(), 2u);
  EXPECT_EQ(parsed->thread_names[0].second, "main");
  EXPECT_EQ(parsed->thread_names[1].second, "worker");

  // Events come back start-sorted with ids, parents, and µs timing intact.
  const TraceEvent& outer = parsed->events[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.id, 1u);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_DOUBLE_EQ(outer.start_us, 0.0);
  EXPECT_DOUBLE_EQ(outer.duration_us, 10'000.0);
  const TraceEvent& inner = parsed->events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent, 1u);
  EXPECT_EQ(inner.thread, 0u);
  const TraceEvent& task = parsed->events[2];
  EXPECT_EQ(task.name, "task");
  EXPECT_EQ(task.parent, 1u);
  EXPECT_EQ(task.thread, 1u);

  // otherData makes the file self-describing.
  const JsonValue* other = doc->find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->member_number("dropped_spans", -1), 7.0);
  EXPECT_EQ(other->member_number("span_count", -1), 3.0);
}

TEST(ProfileTest, SummarizeTraceComputesExactQuantiles) {
  std::vector<TraceEvent> events;
  auto add = [&](const char* name, double start, double dur) {
    TraceEvent e;
    e.name = name;
    e.start_us = start;
    e.duration_us = dur;
    events.push_back(e);
  };
  add("a", 0, 10);
  add("a", 10, 20);
  add("a", 30, 30);
  add("b", 0, 60);

  const ProfileReport report = summarize_trace(events, /*top_n=*/2);
  EXPECT_EQ(report.span_count, 4u);
  EXPECT_DOUBLE_EQ(report.wall_us, 60.0);

  ASSERT_EQ(report.stages.size(), 2u);
  // Equal totals tie-break by name, so "a" sorts first.
  const StageRow& a = report.stages[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.total_us, 60.0);
  EXPECT_DOUBLE_EQ(a.p50_us, 20.0);  // nearest-rank over {10,20,30}
  EXPECT_DOUBLE_EQ(a.p99_us, 30.0);
  EXPECT_DOUBLE_EQ(a.max_us, 30.0);
  EXPECT_DOUBLE_EQ(a.pct_wall, 100.0);
  EXPECT_EQ(report.stages[1].name, "b");

  ASSERT_EQ(report.slowest.size(), 2u);  // top_n caps the list
  EXPECT_EQ(report.slowest[0].name, "b");
  EXPECT_DOUBLE_EQ(report.slowest[0].duration_us, 60.0);
  EXPECT_EQ(report.slowest[1].name, "a");
  EXPECT_DOUBLE_EQ(report.slowest[1].duration_us, 30.0);

  const std::string table = format_profile_report(report);
  EXPECT_NE(table.find("stage"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
  EXPECT_NE(table.find("slowest spans:"), std::string::npos);
}

TEST(ProfileTest, SummarizeEmptyTraceIsZeroed) {
  const ProfileReport report = summarize_trace({});
  EXPECT_EQ(report.span_count, 0u);
  EXPECT_EQ(report.stages.size(), 0u);
  EXPECT_NE(format_profile_report(report).find("0 span(s)"),
            std::string::npos);
}

}  // namespace
}  // namespace litmus::obs
