// Tests for the structured JSONL event log: line validity, the
// run_start..run_end bracket, gapless monotonic sequence numbers under a
// concurrent hammer from the worker pool, heartbeat cadence, and span-id
// correlation with the tracer.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"

namespace litmus::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

JsonValue parse_line(const std::string& line) {
  std::string error;
  auto v = parse_json(line, &error);
  EXPECT_TRUE(v.has_value()) << error << " in: " << line;
  return v ? *v : JsonValue{};
}

TEST(EventLogTest, EveryLineParsesAndCarriesSchemaFields) {
  std::ostringstream os;
  {
    EventLog log(os);
    log.emit(EventType::kRunStart, [](JsonWriter& w) {
      w.member("tool", "test");
    });
    log.emit(EventType::kElementAssessed, [](JsonWriter& w) {
      w.member("kpi", "voice_retainability").member("verdict", "no_impact");
    });
    log.emit(EventType::kRunEnd);
  }
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue v = parse_line(lines[i]);
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.member_number("v", -1), 1.0);
    EXPECT_EQ(v.member_number("seq", -1), static_cast<double>(i));
    EXPECT_GE(v.member_number("t_us", -1), 0.0);
    EXPECT_NE(v.member_string("type", ""), "");
  }
  EXPECT_EQ(parse_line(lines.front()).member_string("type", ""), "run_start");
  EXPECT_EQ(parse_line(lines.back()).member_string("type", ""), "run_end");
}

TEST(EventLogTest, ConcurrentEmissionNeverTearsLinesAndSeqIsGapless) {
  std::ostringstream os;
  constexpr std::size_t kTasks = 64;
  constexpr int kPerTask = 50;
  {
    EventLog log(os);
    set_events(&log);
    par::set_threads(4);
    par::parallel_for(kTasks, [&](std::size_t i) {
      for (int j = 0; j < kPerTask; ++j) {
        if (auto* ev = events())
          ev->emit(EventType::kKpiVerdict, [&](JsonWriter& w) {
            w.member("task", static_cast<std::uint64_t>(i))
                .member("j", static_cast<std::int64_t>(j))
                .member("pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
          });
      }
    });
    par::set_threads(1);
    set_events(nullptr);
    EXPECT_EQ(log.events_written(), kTasks * kPerTask);
  }
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), kTasks * kPerTask);
  std::set<std::uint64_t> seqs;
  for (const std::string& line : lines) {
    const JsonValue v = parse_line(line);  // a torn line would not parse
    ASSERT_TRUE(v.is_object());
    seqs.insert(static_cast<std::uint64_t>(v.member_number("seq", -1)));
  }
  // Gapless: exactly 0..N-1, each exactly once.
  ASSERT_EQ(seqs.size(), lines.size());
  EXPECT_EQ(*seqs.begin(), 0u);
  EXPECT_EQ(*seqs.rbegin(), lines.size() - 1);
  // Monotonic in file order: seq of line i is exactly i (single mutex
  // orders seq assignment and buffer append together).
  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_EQ(parse_line(lines[i]).member_number("seq", -1),
              static_cast<double>(i));
}

TEST(EventLogTest, ProgressEmitsAtCadenceAndAtCompletion) {
  std::ostringstream os;
  {
    EventLog log(os);
    for (std::uint64_t done = 1; done <= 100; ++done)
      log.progress("batch", done, 100, /*every=*/16);
  }
  const auto lines = lines_of(os.str());
  // Multiples of 16 (16,32,48,64,80,96) plus done == total.
  ASSERT_EQ(lines.size(), 7u);
  const JsonValue last = parse_line(lines.back());
  EXPECT_EQ(last.member_string("type", ""), "heartbeat");
  EXPECT_EQ(last.member_string("stage", ""), "batch");
  EXPECT_EQ(last.member_number("done", -1), 100.0);
  EXPECT_EQ(last.member_number("total", -1), 100.0);
}

TEST(EventLogTest, EventsCarryTheCurrentTraceSpanId) {
#if !LITMUS_OBS_ENABLED
  GTEST_SKIP() << "spans are compiled out with -DLITMUS_OBS=OFF";
#endif
  std::ostringstream os;
  set_enabled(true);
  Tracer::global().start();
  {
    EventLog log(os);
    log.emit(EventType::kHeartbeat);  // no active span -> no "span" field
    {
      ScopedSpan span("unit-test");
      log.emit(EventType::kKpiVerdict);
    }
  }
  Tracer::global().stop();
  set_enabled(false);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue no_span = parse_line(lines[0]);
  EXPECT_EQ(no_span.find("span"), nullptr);
  const JsonValue with_span = parse_line(lines[1]);
  const JsonValue* span = with_span.find("span");
  ASSERT_NE(span, nullptr);
  EXPECT_GT(span->number, 0.0);
}

TEST(EventLogTest, HeartbeatsCarryUptimeRssAndDropCounters) {
  std::ostringstream os;
  {
    EventLog log(os);
    log.emit(EventType::kHeartbeat,
             [](JsonWriter& w) { w.member("stage", "x"); });
    log.emit(EventType::kElementAssessed);  // not a liveness event
  }
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue hb = parse_line(lines[0]);
  EXPECT_NE(hb.find("uptime_ms"), nullptr);
  EXPECT_GE(hb.member_number("uptime_ms", -1), 0.0);
  ASSERT_NE(hb.find("rss_bytes"), nullptr);
#if defined(__linux__)
  EXPECT_GT(hb.member_number("rss_bytes", 0), 0.0);
#endif
  EXPECT_EQ(hb.member_number("events.dropped", -1), 0.0);
  // Enrichment is liveness-only: ordinary events stay lean.
  const JsonValue other = parse_line(lines[1]);
  EXPECT_EQ(other.find("uptime_ms"), nullptr);
  EXPECT_EQ(other.find("rss_bytes"), nullptr);
}

TEST(EventLogTest, LivenessEventsTouchTheHeartbeatWatermark) {
  std::ostringstream os;
  EventLog log(os);
  const std::uint64_t before = last_heartbeat_ns();
  log.emit(EventType::kHeartbeat);
  const std::uint64_t after = last_heartbeat_ns();
  EXPECT_GT(after, 0u);
  EXPECT_GE(after, before);
  // Throttled progress calls still count as signs of life.
  const std::uint64_t t0 = last_heartbeat_ns();
  log.progress("stage", 1, 1000, /*every=*/1 << 30);  // never emits a line
  EXPECT_GE(last_heartbeat_ns(), t0);
}

TEST(EventLogTest, RingRetainsRecentEventsAndCountsDrops) {
  EventLog log;  // ring-only: no stream, nothing written anywhere
  const std::size_t total = EventLog::kRingCapacity + 40;
  for (std::size_t i = 0; i < total; ++i)
    log.emit(EventType::kKpiVerdict, [&](JsonWriter& w) {
      w.member("i", static_cast<std::uint64_t>(i));
    });
  EXPECT_EQ(log.events_written(), total);
  EXPECT_EQ(log.ring_dropped(), 40u);

  const EventTail all = log.tail();
  EXPECT_EQ(all.dropped, 40u);
  EXPECT_EQ(all.first_seq, 40u);  // oldest retained
  EXPECT_EQ(all.lines.size(), 256u);  // default page bound
  EXPECT_EQ(parse_line(all.lines.front()).member_number("seq", -1), 40.0);

  // Paging: since cursor and max bound are honored, and next_seq chains.
  const EventTail page = log.tail(/*since=*/total - 3, /*max_lines=*/2);
  EXPECT_EQ(page.first_seq, total - 3);
  EXPECT_EQ(page.next_seq, total - 1);
  ASSERT_EQ(page.lines.size(), 2u);
  const EventTail rest = log.tail(page.next_seq);
  ASSERT_EQ(rest.lines.size(), 1u);
  EXPECT_EQ(rest.next_seq, total);

  // A since cursor in the dropped range starts at the oldest retained.
  EXPECT_EQ(log.tail(/*since=*/5).first_seq, 40u);
  // A cursor past the end returns an empty page, not an error.
  EXPECT_TRUE(log.tail(total + 10).lines.empty());
}

TEST(EventLogTest, LastProgressSnapshotIncludesThrottledCalls) {
  EventLog log;
  EXPECT_EQ(log.last_progress().total, 0u);  // none yet
  log.progress("batch", 3, 500, /*every=*/1 << 30);  // throttled
  const ProgressSnapshot p = log.last_progress();
  EXPECT_EQ(p.stage, "batch");
  EXPECT_EQ(p.done, 3u);
  EXPECT_EQ(p.total, 500u);
}

TEST(EventLogTest, RssBytesReportsThisProcessOnLinux) {
#if defined(__linux__)
  EXPECT_GT(rss_bytes(), 0u);
#else
  SUCCEED();
#endif
}

}  // namespace
}  // namespace litmus::obs
