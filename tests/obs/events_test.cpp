// Tests for the structured JSONL event log: line validity, the
// run_start..run_end bracket, gapless monotonic sequence numbers under a
// concurrent hammer from the worker pool, heartbeat cadence, and span-id
// correlation with the tracer.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"

namespace litmus::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

JsonValue parse_line(const std::string& line) {
  std::string error;
  auto v = parse_json(line, &error);
  EXPECT_TRUE(v.has_value()) << error << " in: " << line;
  return v ? *v : JsonValue{};
}

TEST(EventLogTest, EveryLineParsesAndCarriesSchemaFields) {
  std::ostringstream os;
  {
    EventLog log(os);
    log.emit(EventType::kRunStart, [](JsonWriter& w) {
      w.member("tool", "test");
    });
    log.emit(EventType::kElementAssessed, [](JsonWriter& w) {
      w.member("kpi", "voice_retainability").member("verdict", "no_impact");
    });
    log.emit(EventType::kRunEnd);
  }
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue v = parse_line(lines[i]);
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.member_number("v", -1), 1.0);
    EXPECT_EQ(v.member_number("seq", -1), static_cast<double>(i));
    EXPECT_GE(v.member_number("t_us", -1), 0.0);
    EXPECT_NE(v.member_string("type", ""), "");
  }
  EXPECT_EQ(parse_line(lines.front()).member_string("type", ""), "run_start");
  EXPECT_EQ(parse_line(lines.back()).member_string("type", ""), "run_end");
}

TEST(EventLogTest, ConcurrentEmissionNeverTearsLinesAndSeqIsGapless) {
  std::ostringstream os;
  constexpr std::size_t kTasks = 64;
  constexpr int kPerTask = 50;
  {
    EventLog log(os);
    set_events(&log);
    par::set_threads(4);
    par::parallel_for(kTasks, [&](std::size_t i) {
      for (int j = 0; j < kPerTask; ++j) {
        if (auto* ev = events())
          ev->emit(EventType::kKpiVerdict, [&](JsonWriter& w) {
            w.member("task", static_cast<std::uint64_t>(i))
                .member("j", static_cast<std::int64_t>(j))
                .member("pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
          });
      }
    });
    par::set_threads(1);
    set_events(nullptr);
    EXPECT_EQ(log.events_written(), kTasks * kPerTask);
  }
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), kTasks * kPerTask);
  std::set<std::uint64_t> seqs;
  for (const std::string& line : lines) {
    const JsonValue v = parse_line(line);  // a torn line would not parse
    ASSERT_TRUE(v.is_object());
    seqs.insert(static_cast<std::uint64_t>(v.member_number("seq", -1)));
  }
  // Gapless: exactly 0..N-1, each exactly once.
  ASSERT_EQ(seqs.size(), lines.size());
  EXPECT_EQ(*seqs.begin(), 0u);
  EXPECT_EQ(*seqs.rbegin(), lines.size() - 1);
  // Monotonic in file order: seq of line i is exactly i (single mutex
  // orders seq assignment and buffer append together).
  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_EQ(parse_line(lines[i]).member_number("seq", -1),
              static_cast<double>(i));
}

TEST(EventLogTest, ProgressEmitsAtCadenceAndAtCompletion) {
  std::ostringstream os;
  {
    EventLog log(os);
    for (std::uint64_t done = 1; done <= 100; ++done)
      log.progress("batch", done, 100, /*every=*/16);
  }
  const auto lines = lines_of(os.str());
  // Multiples of 16 (16,32,48,64,80,96) plus done == total.
  ASSERT_EQ(lines.size(), 7u);
  const JsonValue last = parse_line(lines.back());
  EXPECT_EQ(last.member_string("type", ""), "heartbeat");
  EXPECT_EQ(last.member_string("stage", ""), "batch");
  EXPECT_EQ(last.member_number("done", -1), 100.0);
  EXPECT_EQ(last.member_number("total", -1), 100.0);
}

TEST(EventLogTest, EventsCarryTheCurrentTraceSpanId) {
#if !LITMUS_OBS_ENABLED
  GTEST_SKIP() << "spans are compiled out with -DLITMUS_OBS=OFF";
#endif
  std::ostringstream os;
  set_enabled(true);
  Tracer::global().start();
  {
    EventLog log(os);
    log.emit(EventType::kHeartbeat);  // no active span -> no "span" field
    {
      ScopedSpan span("unit-test");
      log.emit(EventType::kKpiVerdict);
    }
  }
  Tracer::global().stop();
  set_enabled(false);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue no_span = parse_line(lines[0]);
  EXPECT_EQ(no_span.find("span"), nullptr);
  const JsonValue with_span = parse_line(lines[1]);
  const JsonValue* span = with_span.find("span");
  ASSERT_NE(span, nullptr);
  EXPECT_GT(span->number, 0.0);
}

}  // namespace
}  // namespace litmus::obs
