// Tests for the observability layer: concurrency of counters/histograms,
// span nesting, sink output, and the runtime toggle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace litmus::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::global().reset();
  }
  void TearDown() override {
    Tracer::global().stop();
    Registry::global().reset();
    set_enabled(false);
  }
};

TEST_F(ObsTest, ConcurrentCounterUpdatesAreExact) {
  Registry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, ConcurrentHistogramTotalsAreDeterministic) {
  Registry reg;
  Histogram& h = reg.histogram("latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(t + 1));  // values 1..8
    });
  for (auto& t : pool) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Sum of t+1 over threads, kPerThread each: (1+..+8) * 5000.
  EXPECT_DOUBLE_EQ(s.sum, 36.0 * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST_F(ObsTest, HistogramQuantilesBracketTrueValues) {
  Registry reg;
  Histogram& h = reg.histogram("q");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot();
  // Log-linear buckets with 8 sub-buckets guarantee <= ~12.5% relative
  // error on quantile estimates.
  EXPECT_NEAR(s.p50, 500.0, 500.0 * 0.13);
  EXPECT_NEAR(s.p95, 950.0, 950.0 * 0.13);
  EXPECT_NEAR(s.p99, 990.0, 990.0 * 0.13);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST_F(ObsTest, HistogramHandlesNegativeValues) {
  Registry reg;
  Histogram& h = reg.histogram("z");
  for (int i = 0; i < 100; ++i) h.record(-2.5);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, -2.5);
  EXPECT_DOUBLE_EQ(s.max, -2.5);
  EXPECT_NEAR(s.p50, -2.5, 0.4);
}

TEST_F(ObsTest, RegistryReferencesSurviveReset) {
  Registry reg;
  Counter& c = reg.counter("persistent");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(reg.counter("persistent").value(), 2u);
  EXPECT_EQ(&reg.counter("persistent"), &c);
}

const HistogramSnapshot* find_histogram(const MetricsSnapshot& snap,
                                        const std::string& name) {
  for (const auto& [n, h] : snap.histograms)
    if (n == name) return &h;
  return nullptr;
}

// Span recording only exists when the layer is compiled in; with
// -DLITMUS_OBS=OFF ScopedSpan is an empty no-op by design.
#if LITMUS_OBS_ENABLED

TEST_F(ObsTest, SpansNestViaThreadLocalParentChain) {
  Tracer tracer;
  tracer.start();
  {
    ScopedSpan outer("outer", tracer);
    {
      ScopedSpan inner("inner", tracer);
    }
    {
      ScopedSpan sibling("sibling", tracer);
    }
  }
  tracer.stop();
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans are recorded at destruction: inner, sibling, outer.
  std::map<std::string, SpanRecord> by_name;
  for (const auto& s : spans) by_name[s.name] = s;
  ASSERT_TRUE(by_name.contains("outer"));
  ASSERT_TRUE(by_name.contains("inner"));
  ASSERT_TRUE(by_name.contains("sibling"));
  EXPECT_EQ(by_name["outer"].parent, 0u);
  EXPECT_EQ(by_name["inner"].parent, by_name["outer"].id);
  EXPECT_EQ(by_name["sibling"].parent, by_name["outer"].id);
  EXPECT_NE(by_name["inner"].id, by_name["sibling"].id);
}

TEST_F(ObsTest, SpansFeedStageHistograms) {
  {
    ScopedSpan span("unit_test_stage");
  }
  const MetricsSnapshot snap = Registry::global().snapshot();
  const HistogramSnapshot* h = find_histogram(snap, "stage.unit_test_stage");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_GE(h->sum, 0.0);
}

#endif  // LITMUS_OBS_ENABLED

TEST_F(ObsTest, MetricsJsonRoundTrip) {
  Registry reg;
  reg.counter("requests").add(42);
  reg.gauge("condition").set(1.5);
  for (int i = 1; i <= 10; ++i)
    reg.histogram("lat_us").record(static_cast<double>(i));

  std::ostringstream out;
  write_metrics_json(out, reg.snapshot());
  const std::string json = out.str();
  // Structural spot-checks (no JSON parser in the test deps).
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\":42"), std::string::npos);
  EXPECT_NE(json.find("\"condition\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":10"), std::string::npos);
  // Balanced braces => structurally plausible JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

#if LITMUS_OBS_ENABLED

TEST_F(ObsTest, TraceJsonContainsAllSpans) {
  Tracer tracer;
  tracer.start();
  {
    ScopedSpan a("alpha", tracer);
    ScopedSpan b("beta", tracer);
  }
  tracer.stop();
  const auto spans = tracer.spans();
  std::ostringstream out;
  write_trace_json(out, spans, tracer.epoch_ns());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"span_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
}

#endif  // LITMUS_OBS_ENABLED

TEST_F(ObsTest, JsonWriterEscapesAndMapsNonFinite) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.member("text", "a\"b\\c\n");
  w.member("nan", std::nan(""));
  w.member("count", std::uint64_t{7});
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\"text\":\"a\\\"b\\\\c\\n\",\"nan\":null,\"count\":7}");
}

TEST_F(ObsTest, DisabledRuntimeSkipsRecording) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  {
    ScopedSpan span("disabled_stage");
  }
  const MetricsSnapshot snap = Registry::global().snapshot();
  EXPECT_EQ(find_histogram(snap, "stage.disabled_stage"), nullptr);
}

TEST_F(ObsTest, HistogramBucketMappingIsMonotonic) {
  double prev = -1.0;
  for (double v : {0.001, 0.1, 1.0, 2.0, 5.0, 100.0, 1e6}) {
    const std::size_t b = Histogram::bucket_of(v);
    const double rep = Histogram::bucket_value(b);
    EXPECT_GT(rep, prev) << "bucket rep not increasing at v=" << v;
    // The representative stays within a sub-bucket's relative width.
    EXPECT_NEAR(rep, v, v * 0.15);
    prev = rep;
  }
}

}  // namespace
}  // namespace litmus::obs
