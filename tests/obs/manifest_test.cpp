// Tests for run provenance: streaming fingerprints, manifest JSON
// round-trip through the parser, and the non-clobbering output opener.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/manifest.h"

namespace litmus::obs {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("litmus_manifest_test_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

void write_text(const std::string& path, const std::string& text) {
  std::ofstream(path, std::ios::binary) << text;
}

TEST(ManifestTest, FingerprintIsStableAndSensitiveToContent) {
  TempDir dir;
  write_text(dir.file("a.csv"), "element,kpi,value\n1,2,3\n");
  const InputFingerprint first = fingerprint_file(dir.file("a.csv"));
  const InputFingerprint again = fingerprint_file(dir.file("a.csv"));
  EXPECT_TRUE(first.ok);
  EXPECT_EQ(first.bytes, 24u);
  EXPECT_EQ(first.hash, again.hash);

  write_text(dir.file("a.csv"), "element,kpi,value\n1,2,4\n");
  const InputFingerprint changed = fingerprint_file(dir.file("a.csv"));
  EXPECT_NE(first.hash, changed.hash);  // one byte flips the fingerprint

  const InputFingerprint missing = fingerprint_file(dir.file("nope.csv"));
  EXPECT_FALSE(missing.ok);
}

TEST(ManifestTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  std::istringstream a("a");
  EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cULL);
  std::istringstream foobar("foobar");
  std::uint64_t bytes = 0;
  EXPECT_EQ(fnv1a64(foobar, &bytes), 0x85944171f73967e8ULL);
  EXPECT_EQ(bytes, 6u);
  std::istringstream empty("");
  EXPECT_EQ(fnv1a64(empty), 0xcbf29ce484222325ULL);  // offset basis
}

TEST(ManifestTest, JsonRoundTripsThroughTheParser) {
  TempDir dir;
  write_text(dir.file("in.csv"), "x\n");
  RunManifest m;
  m.tool = "unit_test";
  m.threads = 4;
  m.seed = 20130209;
  m.started_at_utc = "2026-08-06T00:00:00Z";
  m.add_config("--kpi", "voice_retainability");
  m.add_config("--seed", "20130209");
  m.add_input(dir.file("in.csv"));

  std::string error;
  const auto v = parse_json(m.to_json(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->member_number("schema", -1), 1.0);
  EXPECT_EQ(v->member_string("tool", ""), "unit_test");
  EXPECT_EQ(v->member_string("version", ""), kLitmusVersion);
  EXPECT_EQ(v->member_string("rng_scheme", ""), kRngScheme);
  EXPECT_EQ(v->member_number("threads", -1), 4.0);
  // Seed must survive as an exact integer, not a double-rounded one.
  EXPECT_EQ(v->member_number("seed", -1), 20130209.0);
  const JsonValue* config = v->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->member_string("--kpi", ""), "voice_retainability");
  const JsonValue* inputs = v->find("inputs");
  ASSERT_NE(inputs, nullptr);
  ASSERT_TRUE(inputs->is_array());
  ASSERT_EQ(inputs->array.size(), 1u);
  const JsonValue& fp = inputs->array[0];
  EXPECT_EQ(fp.member_number("bytes", -1), 2.0);
  EXPECT_EQ(fp.member_string("fnv1a64", "").size(), 16u);
  const JsonValue* ok = fp.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->boolean);
}

TEST(ManifestTest, OpenOutputFileCreatesParentsAndRotates) {
  TempDir dir;
  const std::string path = dir.file("deep/nested/out.json");
  {
    std::ofstream out = open_output_file(path);  // parents do not exist yet
    out << "first";
  }
  EXPECT_TRUE(fs::exists(path));
  {
    std::ofstream out = open_output_file(path);  // must rotate, not clobber
    out << "second";
  }
  std::ifstream rotated(path + ".old");
  std::string content;
  rotated >> content;
  EXPECT_EQ(content, "first");
  std::ifstream current(path);
  current >> content;
  EXPECT_EQ(content, "second");
}

TEST(ManifestTest, RepeatedRotationNeverClobbersEarlierRotations) {
  // Regression: the second rotation used to overwrite <path>.old, losing
  // the first run's output. Now each rotation picks the first free
  // .old / .old.N slot.
  TempDir dir;
  const std::string path = dir.file("out.json");
  const char* generations[] = {"first", "second", "third", "fourth"};
  for (const char* text : generations) {
    std::ofstream out = open_output_file(path);
    out << text;
  }
  auto read = [](const std::string& p) {
    std::ifstream in(p);
    std::string s;
    in >> s;
    return s;
  };
  // Every generation survives, each in its own slot, oldest in .old.
  EXPECT_EQ(read(path + ".old"), "first");
  EXPECT_EQ(read(path + ".old.1"), "second");
  EXPECT_EQ(read(path + ".old.2"), "third");
  EXPECT_EQ(read(path), "fourth");
  EXPECT_FALSE(fs::exists(path + ".old.3"));
}

TEST(ManifestTest, WriteFileProducesParsableStandaloneManifest) {
  TempDir dir;
  RunManifest m;
  m.tool = "unit_test";
  m.write_file(dir.file("run_manifest.json"));
  std::ifstream in(dir.file("run_manifest.json"));
  std::ostringstream os;
  os << in.rdbuf();
  std::string error;
  const auto v = parse_json(os.str(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->member_string("tool", ""), "unit_test");
}

TEST(ManifestTest, BuildFlagsStringIsShortAndStable) {
  const std::string flags = build_flags_string();
  EXPECT_NE(flags.find("obs="), std::string::npos);
  EXPECT_EQ(flags, build_flags_string());
}

}  // namespace
}  // namespace litmus::obs
