// Integration tests for the live observability plane (obs/http.h): a real
// loopback socket client against a running HttpServer — endpoint status
// codes and bodies, a /metrics scrape racing concurrent pool work (scraped
// counters must never exceed the final value), /readyz heartbeat
// staleness, /events paging, and parse_serve_addr.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/events.h"
#include "obs/http.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "parallel/pool.h"

namespace litmus::obs {
namespace {

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

// Minimal blocking HTTP/1.1 client: one request, read to EOF (the server
// always closes), split head from body.
HttpResponse http_get(const std::string& address, const std::string& path) {
  const auto colon = address.rfind(':');
  const std::string host = address.substr(0, colon);
  const int port = std::stoi(address.substr(colon + 1));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1);
  HttpResponse res;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return res;  // status 0: connection refused (server down)
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    raw.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  const auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return res;
  res.headers = raw.substr(0, split);
  res.body = raw.substr(split + 4);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) res.status = std::stoi(raw.substr(9));
  return res;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_events(nullptr);
    set_enabled(false);
    Registry::global().reset();
  }
};

TEST_F(HttpServerTest, ParseServeAddrAcceptsPortAndAddrPortForms) {
  auto p = parse_serve_addr("9091");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, "127.0.0.1");
  EXPECT_EQ(p->second, 9091);

  p = parse_serve_addr("0.0.0.0:0");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, "0.0.0.0");
  EXPECT_EQ(p->second, 0);

  EXPECT_FALSE(parse_serve_addr("").has_value());
  EXPECT_FALSE(parse_serve_addr("notaport").has_value());
  EXPECT_FALSE(parse_serve_addr("127.0.0.1:").has_value());
  EXPECT_FALSE(parse_serve_addr("127.0.0.1:70000").has_value());
  EXPECT_FALSE(parse_serve_addr("-1").has_value());
}

TEST_F(HttpServerTest, ServesHealthMetricsStatusAndRejectsUnknown) {
  RunManifest manifest;
  manifest.tool = "http_test";
  Registry::global().counter("demo.count").add(7);

  HttpServer server;
  server.set_manifest(&manifest);
  server.set_status_fn([](JsonWriter& w) { w.member("extra", "here"); });
  const std::string addr = server.start({});
  ASSERT_TRUE(server.running());
  EXPECT_EQ(addr, server.address());
  EXPECT_EQ(addr.rfind("127.0.0.1:", 0), 0u) << addr;

  EXPECT_EQ(http_get(addr, "/healthz").status, 200);
  EXPECT_EQ(http_get(addr, "/healthz").body, "ok\n");

  const HttpResponse metrics = http_get(addr, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain; version=0.0.4"),
            std::string::npos)
      << metrics.headers;
  EXPECT_NE(metrics.body.find("litmus_demo_count_total 7"),
            std::string::npos)
      << metrics.body;
  // The scrape counts itself (visible on the next scrape at the latest;
  // the handler increments before rendering, so already on this one).
  EXPECT_NE(metrics.body.find("litmus_serve_requests_total"),
            std::string::npos)
      << metrics.body;

  const HttpResponse status = http_get(addr, "/status");
  EXPECT_EQ(status.status, 200);
  std::string error;
  const auto doc = parse_json(status.body, &error);
  ASSERT_TRUE(doc.has_value()) << error << " in: " << status.body;
  EXPECT_EQ(doc->member_string("extra", ""), "here");
  EXPECT_EQ(doc->member_string("version", ""), kLitmusVersion);
  ASSERT_NE(doc->find("manifest"), nullptr);
  EXPECT_EQ(doc->find("manifest")->member_string("tool", ""), "http_test");

  EXPECT_EQ(http_get(addr, "/nope").status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(http_get(addr, "/healthz").status, 0);  // refused after stop
  server.stop();  // idempotent
}

TEST_F(HttpServerTest, ReadyzTracksHeartbeatStaleness) {
  ServeOptions options;
  options.ready_stale_after_ms = 200;
  HttpServer server;
  const std::string addr = server.start(options);

  // (The heartbeat watermark is process-global, so earlier tests may have
  // touched it already; only age-relative assertions are safe here.)
  touch_heartbeat();
  EXPECT_EQ(http_get(addr, "/readyz").status, 200);
  EXPECT_EQ(http_get(addr, "/readyz").body, "ready\n");

  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  const HttpResponse stale = http_get(addr, "/readyz");
  EXPECT_EQ(stale.status, 503);
  EXPECT_NE(stale.body.find("stale"), std::string::npos) << stale.body;

  touch_heartbeat();  // recovery is symmetric
  EXPECT_EQ(http_get(addr, "/readyz").status, 200);
  server.stop();
}

TEST_F(HttpServerTest, EventsEndpointPagesTheRing) {
  EventLog ring_only;
  set_events(&ring_only);
  for (int i = 0; i < 5; ++i)
    ring_only.emit(EventType::kHeartbeat,
                   [&](JsonWriter& w) { w.member("i", std::int64_t{i}); });

  HttpServer server;
  const std::string addr = server.start({});
  const HttpResponse all = http_get(addr, "/events");
  EXPECT_EQ(all.status, 200);
  std::string error;
  const auto doc = parse_json(all.body, &error);
  ASSERT_TRUE(doc.has_value()) << error << " in: " << all.body;
  EXPECT_EQ(doc->member_number("next_seq", -1), 5);
  ASSERT_NE(doc->find("events"), nullptr);

  const HttpResponse page = http_get(addr, "/events?since=3&max=1");
  const auto pdoc = parse_json(page.body, &error);
  ASSERT_TRUE(pdoc.has_value()) << error << " in: " << page.body;
  EXPECT_EQ(pdoc->member_number("first_seq", -1), 3);
  EXPECT_EQ(pdoc->member_number("next_seq", -1), 4);

  server.stop();
  set_events(nullptr);
}

TEST_F(HttpServerTest, NonGetMethodsAre405) {
  HttpServer server;
  const std::string addr = server.start({});
  const auto colon = addr.rfind(':');
  const int port = std::stoi(addr.substr(colon + 1));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  const std::string req = "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    raw.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 405", 0), 0u) << raw;
  server.stop();
}

// The acceptance property for a lock-free scrape path: every counter value
// a concurrent scrape observes is <= the value the final snapshot reports,
// and successive scrapes observe monotonically non-decreasing values.
TEST_F(HttpServerTest, ConcurrentScrapesAreMonotoneAndNeverExceedFinal) {
  HttpServer server;
  const std::string addr = server.start({});
  ASSERT_EQ(http_get(addr, "/metrics").status, 200);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::vector<std::uint64_t> samples;  // scraper-owned until join

  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const HttpResponse res = http_get(addr, "/metrics");
      if (res.status != 200) continue;
      // Line-anchored: the family name also appears in # HELP / # TYPE.
      const std::string needle = "\nlitmus_work_items_total ";
      const auto pos = res.body.find(needle);
      if (pos != std::string::npos)
        samples.push_back(std::stoull(res.body.substr(pos + needle.size())));
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Produce rounds of counted pool work until the scraper has observed a
  // few mid-run snapshots (bounded so a slow box cannot hang the test).
  Counter& work = Registry::global().counter("work.items");
  constexpr std::uint64_t kRound = 5000;
  std::uint64_t total = 0;
  for (int round = 0;
       round < 200 && scrapes.load(std::memory_order_relaxed) < 3;
       ++round) {
    par::parallel_for(kRound, [&](std::size_t) { work.add(1); });
    total += kRound;
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  server.stop();

  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_EQ(work.value(), total);
  // Every concurrent scrape saw a value <= the final total, and the
  // sequence of scraped values never decreased.
  std::uint64_t prev = 0;
  for (const std::uint64_t v : samples) {
    EXPECT_GE(v, prev);
    EXPECT_LE(v, total);
    prev = v;
  }
  // The final snapshot reports the exact total.
  const auto snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters)
    if (name == "work.items") {
      EXPECT_EQ(value, total);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST_F(HttpServerTest, DoublePortZeroServersBindDistinctPorts) {
  HttpServer a;
  HttpServer b;
  const std::string addr_a = a.start({});
  const std::string addr_b = b.start({});
  EXPECT_NE(addr_a, addr_b);
  EXPECT_EQ(http_get(addr_a, "/healthz").status, 200);
  EXPECT_EQ(http_get(addr_b, "/healthz").status, 200);
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace litmus::obs
