// Tests for cross-run drift comparison: the golden zero-drift case on a
// byte-identical copy, seed/config/input gating, the informational status
// of thread count and wall time, verdict flips, and metric tolerance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/rundiff.h"

namespace litmus::obs {
namespace {

namespace fs = std::filesystem;

class RunDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("litmus_rundiff_test_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Writes a minimal but complete run directory.
  std::string make_run(const std::string& name, std::uint64_t seed = 42,
                       std::size_t threads = 1,
                       const std::string& verdict = "improvement",
                       double iterations = 1000, double p50 = 0.9) {
    const fs::path dir = root_ / name;
    fs::create_directories(dir);
    std::ofstream(dir / "run_manifest.json")
        << "{\"schema\":1,\"tool\":\"litmus_cli assess\","
           "\"version\":\"0.4.0\",\"build_flags\":\"obs=on,assert=off\","
           "\"threads\":" << threads << ",\"seed\":" << seed
        << ",\"rng_scheme\":\"counter-fork-v1\","
           "\"started_at_utc\":\"2026-08-06T00:00:00Z\","
           "\"config\":{\"--kpi\":\"voice_retainability\"},"
           "\"inputs\":[{\"path\":\"demo/series.csv\",\"bytes\":10,"
           "\"fnv1a64\":\"00000000000000aa\",\"ok\":true}]}\n";
    std::ofstream(dir / "events.jsonl")
        << "{\"v\":1,\"seq\":0,\"t_us\":0,\"type\":\"run_start\"}\n"
        << "{\"v\":1,\"seq\":1,\"t_us\":5,\"type\":\"element_assessed\","
           "\"kpi\":\"voice_retainability\",\"element\":10,\"bin\":0,"
           "\"verdict\":\"" << verdict << "\"}\n"
        << "{\"v\":1,\"seq\":2,\"t_us\":9,\"type\":\"run_end\","
           "\"wall_s\":0.5,\"status\":\"ok\"}\n";
    std::ofstream(dir / "metrics.json")
        << "{\"counters\":{\"litmus.iterations\":" << iterations
        << ",\"stage.fit.calls\":123},"
           "\"histograms\":{\"litmus.fit.r_squared\":{\"count\":10,"
           "\"p50\":" << p50 << "}}}\n";
    return dir.string();
  }

  fs::path root_;
};

TEST_F(RunDiffTest, ByteIdenticalCopyReportsZeroDrift) {
  const std::string a = make_run("a");
  const fs::path b = root_ / "b";
  fs::copy(a, b, fs::copy_options::recursive);  // the golden case
  const RunDiffReport report =
      diff_runs(load_run_dir(a), load_run_dir(b.string()));
  EXPECT_FALSE(report.drift);
  EXPECT_EQ(report.verdict_flips, 0u);
  for (const auto& line : report.manifest) EXPECT_FALSE(line.gating);
  const std::string text =
      format_run_diff(report, load_run_dir(a), load_run_dir(b.string()));
  EXPECT_NE(text.find("no drift"), std::string::npos);
}

TEST_F(RunDiffTest, SeedDeltaGates) {
  const RunData a = load_run_dir(make_run("a", /*seed=*/42));
  const RunData b = load_run_dir(make_run("b", /*seed=*/8));
  const RunDiffReport report = diff_runs(a, b);
  EXPECT_TRUE(report.drift);
  const std::string text = format_run_diff(report, a, b);
  EXPECT_NE(text.find("seed: 42 -> 8"), std::string::npos);
  EXPECT_NE(text.find("DRIFT"), std::string::npos);

  DiffThresholds ignore;
  ignore.ignore_manifest = true;
  EXPECT_FALSE(diff_runs(a, b, ignore).drift);
}

TEST_F(RunDiffTest, ThreadCountDeltaIsInformationalOnly) {
  const RunData a = load_run_dir(make_run("a", 42, /*threads=*/1));
  const RunData b = load_run_dir(make_run("b", 42, /*threads=*/8));
  const RunDiffReport report = diff_runs(a, b);
  EXPECT_FALSE(report.drift);  // determinism contract: threads never gate
  bool mentioned = false;
  for (const auto& line : report.manifest)
    if (line.text.find("threads") != std::string::npos) {
      mentioned = true;
      EXPECT_FALSE(line.gating);
    }
  EXPECT_TRUE(mentioned);
}

TEST_F(RunDiffTest, ServeTrafficAndAddressNeverGate) {
  // Run A never served; run B ran with --serve on an ephemeral port and
  // absorbed scrapes (serve.* counters, scrape-latency histogram). The
  // plane is read-only, so the runs must diff clean.
  const std::string a = make_run("a");
  const fs::path b_dir = root_ / "b";
  fs::copy(a, b_dir, fs::copy_options::recursive);
  std::ofstream(b_dir / "run_manifest.json")
      << "{\"schema\":1,\"tool\":\"litmus_cli assess\","
         "\"version\":\"0.4.0\",\"build_flags\":\"obs=on,assert=off\","
         "\"threads\":1,\"seed\":42,"
         "\"rng_scheme\":\"counter-fork-v1\","
         "\"started_at_utc\":\"2026-08-06T00:00:00Z\","
         "\"config\":{\"--kpi\":\"voice_retainability\","
         "\"--serve\":\"127.0.0.1:0\",\"--ready-stale-ms\":\"500\","
         "\"serve.addr\":\"127.0.0.1:40441\"},"
         "\"inputs\":[{\"path\":\"demo/series.csv\",\"bytes\":10,"
         "\"fnv1a64\":\"00000000000000aa\",\"ok\":true}]}\n";
  std::ofstream(b_dir / "metrics.json")
      << "{\"counters\":{\"litmus.iterations\":1000,"
         "\"stage.fit.calls\":123,\"serve.requests\":17,"
         "\"serve.requests.metrics\":9},"
         "\"histograms\":{\"litmus.fit.r_squared\":{\"count\":10,"
         "\"p50\":0.9},\"serve.scrape_us\":{\"count\":9,\"p50\":120}}}\n";

  const RunData ra = load_run_dir(a);
  const RunData rb = load_run_dir(b_dir.string());
  const RunDiffReport report = diff_runs(ra, rb);
  EXPECT_FALSE(report.drift) << format_run_diff(report, ra, rb);
  for (const auto& line : report.metrics)
    if (line.text.find("serve.") != std::string::npos)
      EXPECT_FALSE(line.gating) << line.text;
  for (const auto& line : report.manifest)
    if (line.text.find("serve") != std::string::npos)
      EXPECT_FALSE(line.gating) << line.text;
}

TEST_F(RunDiffTest, VerdictFlipGatesAndMaxFlipsRaisesTheBar) {
  const RunData a = load_run_dir(make_run("a", 42, 1, "improvement"));
  const RunData b = load_run_dir(make_run("b", 42, 1, "degradation"));
  const RunDiffReport report = diff_runs(a, b);
  EXPECT_TRUE(report.drift);
  EXPECT_EQ(report.verdict_flips, 1u);
  EXPECT_EQ(report.verdicts_compared, 1u);

  DiffThresholds lenient;
  lenient.max_verdict_flips = 1;
  EXPECT_FALSE(diff_runs(a, b, lenient).drift);
}

TEST_F(RunDiffTest, DeterministicCounterDeltaGatesExactly) {
  const RunData a = load_run_dir(make_run("a", 42, 1, "improvement", 1000));
  const RunData b = load_run_dir(make_run("b", 42, 1, "improvement", 1001));
  EXPECT_TRUE(diff_runs(a, b).drift);  // deterministic counters: exact
}

TEST_F(RunDiffTest, HistogramDriftRespectsRelativeTolerance) {
  const RunData a =
      load_run_dir(make_run("a", 42, 1, "improvement", 1000, /*p50=*/0.90));
  const RunData b =
      load_run_dir(make_run("b", 42, 1, "improvement", 1000, /*p50=*/0.99));
  EXPECT_FALSE(diff_runs(a, b).drift);  // 10% < default 25% tolerance

  DiffThresholds tight;
  tight.metric_rel_tolerance = 0.05;
  EXPECT_TRUE(diff_runs(a, b, tight).drift);
}

TEST_F(RunDiffTest, LoadRejectsRunsWithUnparsableEventLines) {
  const std::string a = make_run("a");
  std::ofstream(fs::path(a) / "events.jsonl", std::ios::app)
      << "{\"v\":1,\"seq\":3,truncated\n";
  EXPECT_THROW(load_run_dir(a), std::runtime_error);
}

TEST_F(RunDiffTest, LoadRequiresManifestAndEvents) {
  const fs::path dir = root_ / "empty";
  fs::create_directories(dir);
  EXPECT_THROW(load_run_dir(dir.string()), std::runtime_error);
}

/// A run dir with explicit adaptive-sampling config flags and metrics, as
/// `litmus_cli ... --adaptive-sampling on` records them.
std::string make_adaptive_run(const fs::path& root, const std::string& name,
                              const std::string& adaptive,
                              double iterations, double rank_calls,
                              double stopped_early) {
  const fs::path dir = root / name;
  fs::create_directories(dir);
  std::ofstream(dir / "run_manifest.json")
      << "{\"schema\":1,\"tool\":\"litmus_cli assess\","
         "\"version\":\"0.4.0\",\"build_flags\":\"obs=on,assert=off\","
         "\"threads\":1,\"seed\":42,"
         "\"rng_scheme\":\"counter-fork-v1\","
         "\"started_at_utc\":\"2026-08-06T00:00:00Z\","
         "\"config\":{\"--kpi\":\"voice_retainability\","
         "\"--adaptive-sampling\":\"" << adaptive << "\","
         "\"--min-iterations\":\"8\",\"--stability-rounds\":\"2\"},"
         "\"inputs\":[{\"path\":\"demo/series.csv\",\"bytes\":10,"
         "\"fnv1a64\":\"00000000000000aa\",\"ok\":true}]}\n";
  std::ofstream(dir / "events.jsonl")
      << "{\"v\":1,\"seq\":0,\"t_us\":0,\"type\":\"run_start\"}\n"
      << "{\"v\":1,\"seq\":1,\"t_us\":5,\"type\":\"element_assessed\","
         "\"kpi\":\"voice_retainability\",\"element\":10,\"bin\":0,"
         "\"verdict\":\"improvement\"}\n"
      << "{\"v\":1,\"seq\":2,\"t_us\":9,\"type\":\"run_end\","
         "\"wall_s\":0.5,\"status\":\"ok\"}\n";
  std::ofstream metrics(dir / "metrics.json");
  metrics << "{\"counters\":{\"litmus.iterations\":" << iterations
          << ",\"rank_test.fp.calls\":" << rank_calls;
  if (adaptive == "on")
    metrics << ",\"litmus.adaptive.stopped_early\":" << stopped_early
            << ",\"litmus.adaptive.iterations_saved\":13";
  metrics << "},\"histograms\":{\"litmus.fit.r_squared\":{\"count\":10,"
             "\"p50\":0.9}}}\n";
  return dir.string();
}

TEST_F(RunDiffTest, AdaptiveConfigGatesAndVolumeMetricsTurnInformational) {
  // Adaptive-off vs adaptive-on: the config flag gates (the runs are not
  // interchangeable), but the volume-of-computation metrics — iteration
  // counts, fit telemetry, rank-test call counts — differ by construction
  // and must not gate; the verdict set carries the signal.
  const RunData a = load_run_dir(
      make_adaptive_run(root_, "a", "off", 1000, 40, 0));
  const RunData b = load_run_dir(
      make_adaptive_run(root_, "b", "on", 600, 130, 25));
  const RunDiffReport gated = diff_runs(a, b);
  EXPECT_TRUE(gated.drift);
  bool config_gates = false;
  for (const auto& line : gated.manifest)
    if (line.text.find("--adaptive-sampling") != std::string::npos)
      config_gates = line.gating;
  EXPECT_TRUE(config_gates);

  DiffThresholds ignore;
  ignore.ignore_manifest = true;
  const RunDiffReport report = diff_runs(a, b, ignore);
  EXPECT_FALSE(report.drift) << format_run_diff(report, a, b);
  EXPECT_EQ(report.verdict_flips, 0u);
  for (const auto& line : report.metrics) {
    EXPECT_FALSE(line.gating) << line.text;
    if (line.text.find("litmus.iterations") != std::string::npos ||
        line.text.find("rank_test.") != std::string::npos)
      EXPECT_NE(line.text.find("informational"), std::string::npos)
          << line.text;
  }
}

TEST_F(RunDiffTest, AdaptiveDiagnosticsNeverGate) {
  // Same adaptive config, different budget-spend diagnostics (e.g. two
  // code versions stopping at different checkpoints): litmus.adaptive.*
  // describes how the budget was spent, never gates.
  const RunData a = load_run_dir(
      make_adaptive_run(root_, "a", "on", 600, 130, 25));
  const RunData b = load_run_dir(
      make_adaptive_run(root_, "b", "on", 600, 130, 20));
  const RunDiffReport report = diff_runs(a, b);
  EXPECT_FALSE(report.drift) << format_run_diff(report, a, b);
  bool mentioned = false;
  for (const auto& line : report.metrics)
    if (line.text.find("litmus.adaptive.") != std::string::npos) {
      mentioned = true;
      EXPECT_FALSE(line.gating) << line.text;
    }
  EXPECT_TRUE(mentioned);
}

TEST_F(RunDiffTest, SameAdaptiveConfigKeepsIterationVolumeGating) {
  // Two runs under the SAME adaptive config are deterministic, so an
  // iteration-count delta is real drift, exactly as adaptive-off.
  const RunData a = load_run_dir(
      make_adaptive_run(root_, "a", "on", 600, 130, 25));
  const RunData b = load_run_dir(
      make_adaptive_run(root_, "b", "on", 601, 130, 25));
  EXPECT_TRUE(diff_runs(a, b).drift);
}

/// A sharded run dir: the parent stream holds only the run bracket, the
/// verdicts live in shard-NN/events.jsonl exactly as `litmus_cli batch
/// --shards N` writes them.
std::string make_sharded_run(const fs::path& root, const std::string& name,
                             const std::string& v1, const std::string& v2) {
  const fs::path dir = root / name;
  fs::create_directories(dir / "shard-00");
  fs::create_directories(dir / "shard-01");
  std::ofstream(dir / "run_manifest.json")
      << "{\"schema\":1,\"tool\":\"litmus_cli batch\","
         "\"version\":\"0.9.0\",\"build_flags\":\"obs=on,assert=off\","
         "\"threads\":1,\"seed\":42,"
         "\"rng_scheme\":\"counter-fork-v1\","
         "\"started_at_utc\":\"2026-08-06T00:00:00Z\","
         "\"config\":{\"--shards\":\"2\"},\"inputs\":[]}\n";
  std::ofstream(dir / "events.jsonl")
      << "{\"v\":1,\"seq\":0,\"t_us\":0,\"type\":\"run_start\"}\n"
      << "{\"v\":1,\"seq\":1,\"t_us\":9,\"type\":\"run_end\","
         "\"wall_s\":0.5,\"status\":\"ok\"}\n";
  std::ofstream(dir / "shard-00" / "events.jsonl")
      << "{\"v\":1,\"seq\":0,\"t_us\":0,\"type\":\"run_start\","
         "\"shard\":0}\n"
      << "{\"v\":1,\"seq\":1,\"t_us\":2,\"type\":\"element_assessed\","
         "\"kpi\":\"voice_retainability\",\"element\":10,\"bin\":0,"
         "\"verdict\":\"" << v1 << "\"}\n"
      << "{\"v\":1,\"seq\":2,\"t_us\":3,\"type\":\"run_end\","
         "\"shard\":0,\"wall_s\":0.2,\"status\":\"ok\"}\n";
  std::ofstream(dir / "shard-01" / "events.jsonl")
      << "{\"v\":1,\"seq\":0,\"t_us\":0,\"type\":\"run_start\","
         "\"shard\":1}\n"
      << "{\"v\":1,\"seq\":1,\"t_us\":2,\"type\":\"element_assessed\","
         "\"kpi\":\"voice_retainability\",\"element\":11,\"bin\":0,"
         "\"verdict\":\"" << v2 << "\"}\n"
      << "{\"v\":1,\"seq\":2,\"t_us\":3,\"type\":\"run_end\","
         "\"shard\":1,\"wall_s\":0.2,\"status\":\"ok\"}\n";
  return dir.string();
}

TEST_F(RunDiffTest, ShardedRunStitchesVerdictsFromShardStreams) {
  const RunData r = load_run_dir(
      make_sharded_run(root_, "sharded", "improvement", "no_impact"));
  // Both shard verdicts merged into one map; the parent bracket still
  // provides run_start/run_end and the wall clock.
  EXPECT_EQ(r.verdicts.size(), 2u);
  EXPECT_TRUE(r.has_run_start);
  EXPECT_TRUE(r.has_run_end);
  EXPECT_DOUBLE_EQ(r.wall_seconds, 0.5);
}

TEST_F(RunDiffTest, ShardedVsUnshardedEquivalentRunDiffsClean) {
  // The same two verdicts, once written flat by an unsharded batch and
  // once split across shard dirs: diff-runs must see zero drift, with
  // --shards informational.
  const fs::path flat = root_ / "flat";
  fs::create_directories(flat);
  std::ofstream(flat / "run_manifest.json")
      << "{\"schema\":1,\"tool\":\"litmus_cli batch\","
         "\"version\":\"0.9.0\",\"build_flags\":\"obs=on,assert=off\","
         "\"threads\":1,\"seed\":42,"
         "\"rng_scheme\":\"counter-fork-v1\","
         "\"started_at_utc\":\"2026-08-06T00:00:00Z\","
         "\"config\":{\"--shards\":\"1\"},\"inputs\":[]}\n";
  std::ofstream(flat / "events.jsonl")
      << "{\"v\":1,\"seq\":0,\"t_us\":0,\"type\":\"run_start\"}\n"
      << "{\"v\":1,\"seq\":1,\"t_us\":2,\"type\":\"element_assessed\","
         "\"kpi\":\"voice_retainability\",\"element\":10,\"bin\":0,"
         "\"verdict\":\"improvement\"}\n"
      << "{\"v\":1,\"seq\":2,\"t_us\":3,\"type\":\"element_assessed\","
         "\"kpi\":\"voice_retainability\",\"element\":11,\"bin\":0,"
         "\"verdict\":\"no_impact\"}\n"
      << "{\"v\":1,\"seq\":3,\"t_us\":9,\"type\":\"run_end\","
         "\"wall_s\":0.5,\"status\":\"ok\"}\n";

  const RunData a = load_run_dir(flat.string());
  const RunData b = load_run_dir(
      make_sharded_run(root_, "sharded", "improvement", "no_impact"));
  const RunDiffReport report = diff_runs(a, b);
  EXPECT_FALSE(report.drift) << format_run_diff(report, a, b);
  EXPECT_EQ(report.verdicts_compared, 2u);
  EXPECT_EQ(report.verdict_flips, 0u);
}

TEST_F(RunDiffTest, ShardVerdictFlipStillGates) {
  const RunData a = load_run_dir(
      make_sharded_run(root_, "a", "improvement", "no_impact"));
  const RunData b = load_run_dir(
      make_sharded_run(root_, "b", "improvement", "degradation"));
  const RunDiffReport report = diff_runs(a, b);
  EXPECT_TRUE(report.drift);
  EXPECT_EQ(report.verdict_flips, 1u);
}

}  // namespace
}  // namespace litmus::obs
