#include "device/segmented_generator.h"

#include <gtest/gtest.h>

#include <memory>

#include "cellnet/builder.h"
#include "simkit/network_events.h"
#include "tsmath/stats.h"

namespace litmus::dev {
namespace {

struct Fixture {
  net::Topology topo;
  std::unique_ptr<sim::KpiGenerator> gen;
  net::ElementId tower;

  Fixture() {
    topo = net::build_small_region(net::Region::kWest, 91, 2, 5);
    gen = std::make_unique<sim::KpiGenerator>(topo,
                                              sim::GeneratorConfig{.seed = 91});
    tower = topo.of_kind(net::ElementKind::kNodeB).front();
  }
};

TEST(SegmentedGenerator, Deterministic) {
  Fixture f;
  const SegmentedGenerator a(*f.gen, DeviceCatalog::standard());
  const SegmentedGenerator b(*f.gen, DeviceCatalog::standard());
  const auto sa = a.kpi_series(f.tower, DeviceClassId{1},
                               kpi::KpiId::kVoiceRetainability, 0, 100);
  const auto sb = b.kpi_series(f.tower, DeviceClassId{1},
                               kpi::KpiId::kVoiceRetainability, 0, 100);
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(SegmentedGenerator, ClassesShareElementLatent) {
  Fixture f;
  const SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  const auto a = seg.device_latent(f.tower, DeviceClassId{1}, 0, 600);
  const auto b = seg.device_latent(f.tower, DeviceClassId{3}, 0, 600);
  // Strong correlation through the common network latent.
  EXPECT_GT(ts::pearson(a.values(), b.values()), 0.5);
  // But not identical series.
  bool diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) diff = true;
  EXPECT_TRUE(diff);
}

TEST(SegmentedGenerator, BaselineOffsetsShowUp) {
  Fixture f;
  const SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  // Class 1 (+0.3 sigma) vs class 4 (-0.4 sigma): persistent level gap.
  const auto hi = seg.device_latent(f.tower, DeviceClassId{1}, 0, 800);
  const auto lo = seg.device_latent(f.tower, DeviceClassId{4}, 0, 800);
  EXPECT_GT(ts::mean(hi) - ts::mean(lo), 0.4);
}

TEST(SegmentedGenerator, EventShiftsOnlyThatClass) {
  Fixture f;
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  DeviceEvent ev;
  ev.device = DeviceClassId{2};
  ev.start_bin = 0;
  ev.sigma_shift = -2.0;
  seg.add_event(ev);

  SegmentedGenerator clean(*f.gen, DeviceCatalog::standard());
  const auto dirty2 = seg.device_latent(f.tower, DeviceClassId{2}, 0, 300);
  const auto clean2 = clean.device_latent(f.tower, DeviceClassId{2}, 0, 300);
  const auto dirty3 = seg.device_latent(f.tower, DeviceClassId{3}, 0, 300);
  const auto clean3 = clean.device_latent(f.tower, DeviceClassId{3}, 0, 300);
  EXPECT_NEAR(ts::mean(dirty2) - ts::mean(clean2), -2.0, 0.1);
  EXPECT_NEAR(ts::mean(dirty3) - ts::mean(clean3), 0.0, 0.05);
}

TEST(SegmentedGenerator, EventWindowAndRamp) {
  Fixture f;
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  DeviceEvent ev;
  ev.device = DeviceClassId{1};
  ev.start_bin = 0;
  ev.end_bin = 100;
  ev.sigma_shift = 3.0;
  ev.ramp_bins = 10;
  seg.add_event(ev);
  SegmentedGenerator clean(*f.gen, DeviceCatalog::standard());
  const auto dirty = seg.device_latent(f.tower, DeviceClassId{1}, -50, 250);
  const auto base = clean.device_latent(f.tower, DeviceClassId{1}, -50, 250);
  const auto delta = dirty.minus(base);
  EXPECT_DOUBLE_EQ(delta.at_bin(-10), 0.0);
  EXPECT_LT(delta.at_bin(2), 3.0);  // ramping
  EXPECT_NEAR(delta.at_bin(50), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(delta.at_bin(150), 0.0);  // past end
}

TEST(SegmentedGenerator, KpiMappingMatchesNetworkGenerator) {
  Fixture f;
  const SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  const auto s = seg.kpi_series(f.tower, DeviceClassId{3},
                                kpi::KpiId::kVoiceRetainability, 0, 500);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (ts::is_missing(s[i])) continue;
    EXPECT_GE(s[i], 0.0);
    EXPECT_LE(s[i], 1.0);
  }
}

}  // namespace
}  // namespace litmus::dev
