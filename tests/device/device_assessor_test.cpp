#include "device/device_assessor.h"

#include <gtest/gtest.h>

#include <memory>

#include "cellnet/builder.h"
#include "simkit/seasonality.h"
#include "simkit/weather.h"

namespace litmus::dev {
namespace {

struct Fixture {
  net::Topology topo;
  std::unique_ptr<sim::KpiGenerator> gen;
  std::vector<net::ElementId> towers;

  explicit Fixture(std::uint64_t seed = 451, bool with_weather = false) {
    topo = net::build_small_region(net::Region::kNortheast, seed, 2, 6);
    gen = std::make_unique<sim::KpiGenerator>(
        topo, sim::GeneratorConfig{.seed = seed});
    gen->add_factor(std::make_shared<sim::DiurnalLoadFactor>());
    towers = topo.of_kind(net::ElementKind::kNodeB);
    if (with_weather) {
      auto storm = sim::make_event(sim::WeatherKind::kSevereStorm,
                                   topo.get(towers[0]).location, 24, 48);
      gen->add_factor(std::make_shared<sim::WeatherFactor>(
          std::vector<sim::WeatherEvent>{storm}));
    }
  }
};

TEST(DeviceAssessor, DetectsBadFirmwareRollout) {
  Fixture f;
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  DeviceEvent rollout;
  rollout.device = DeviceClassId{2};
  rollout.start_bin = 0;
  rollout.sigma_shift = -1.5;  // the firmware regresses service
  seg.add_event(rollout);

  const DeviceImpactAssessor assessor(seg);
  const DeviceAssessment a = assessor.assess(
      DeviceClassId{2}, f.towers, kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_EQ(a.summary.verdict, core::Verdict::kDegradation);
  EXPECT_GT(a.summary.degradations, f.towers.size() / 2);
}

TEST(DeviceAssessor, CleanRolloutIsNoImpact) {
  Fixture f;
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  const DeviceImpactAssessor assessor(seg);
  const DeviceAssessment a = assessor.assess(
      DeviceClassId{2}, f.towers, kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_EQ(a.summary.verdict, core::Verdict::kNoImpact);
}

TEST(DeviceAssessor, GoodRolloutDetectedAsImprovement) {
  Fixture f;
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  DeviceEvent rollout;
  rollout.device = DeviceClassId{1};
  rollout.start_bin = 0;
  rollout.sigma_shift = +1.5;
  seg.add_event(rollout);
  const DeviceImpactAssessor assessor(seg);
  EXPECT_EQ(assessor
                .assess(DeviceClassId{1}, f.towers,
                        kpi::KpiId::kVoiceRetainability, 0)
                .summary.verdict,
            core::Verdict::kImprovement);
}

TEST(DeviceAssessor, NetworkConfoundCancelsAcrossClasses) {
  // A storm hits the market right after a neutral rollout. Every class on
  // every tower degrades together; the rollout must still be judged
  // no-impact because the other classes are its controls.
  Fixture f(452, /*with_weather=*/true);
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  const DeviceImpactAssessor assessor(seg);
  const DeviceAssessment a = assessor.assess(
      DeviceClassId{3}, f.towers, kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_EQ(a.summary.verdict, core::Verdict::kNoImpact);
}

TEST(DeviceAssessor, ExclusionListRemovesChangedClassFromControls) {
  // A rollout degrades class 2. Assessing *class 1* must not be distorted
  // by the moved class sitting in its control group: with class 2 excluded,
  // class 1 reads no-impact; with it included, the relative read is biased.
  Fixture f;
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  DeviceEvent rollout;
  rollout.device = DeviceClassId{2};
  rollout.start_bin = 0;
  rollout.sigma_shift = -1.5;
  seg.add_event(rollout);
  const DeviceImpactAssessor assessor(seg);

  const std::vector<DeviceClassId> exclude{DeviceClassId{2}};
  const DeviceAssessment clean = assessor.assess(
      DeviceClassId{1}, f.towers, kpi::KpiId::kVoiceRetainability, 0,
      exclude);
  EXPECT_EQ(clean.summary.verdict, core::Verdict::kNoImpact);

  const DeviceAssessment biased = assessor.assess(
      DeviceClassId{1}, f.towers, kpi::KpiId::kVoiceRetainability, 0);
  // One third of the unexcluded control group moved by -1.5 sigma: the
  // biased read flags a spurious relative improvement at most towers.
  EXPECT_EQ(biased.summary.verdict, core::Verdict::kImprovement);
}

TEST(DeviceAssessor, PerElementOutcomesPopulated) {
  Fixture f;
  SegmentedGenerator seg(*f.gen, DeviceCatalog::standard());
  const DeviceImpactAssessor assessor(seg);
  const DeviceAssessment a = assessor.assess(
      DeviceClassId{4}, f.towers, kpi::KpiId::kDataRetainability, 0);
  EXPECT_EQ(a.per_element.size(), f.towers.size());
  EXPECT_EQ(a.elements.size(), f.towers.size());
  EXPECT_EQ(a.kpi, kpi::KpiId::kDataRetainability);
}

}  // namespace
}  // namespace litmus::dev
