#include "device/device.h"

#include <gtest/gtest.h>

namespace litmus::dev {
namespace {

TEST(DeviceCatalog, StandardHasFourClasses) {
  const DeviceCatalog cat = DeviceCatalog::standard();
  EXPECT_EQ(cat.size(), 4u);
  double share = 0;
  for (const auto& c : cat.all()) share += c.traffic_share;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(DeviceCatalog, GetById) {
  const DeviceCatalog cat = DeviceCatalog::standard();
  const DeviceClass& c = cat.get(DeviceClassId{2});
  EXPECT_EQ(c.id, DeviceClassId{2});
  EXPECT_FALSE(c.vendor.empty());
  EXPECT_THROW(cat.get(DeviceClassId{99}), std::out_of_range);
}

TEST(DeviceCatalog, OthersExcludesOne) {
  const DeviceCatalog cat = DeviceCatalog::standard();
  const auto others = cat.others(DeviceClassId{3});
  EXPECT_EQ(others.size(), 3u);
  for (const auto id : others) EXPECT_NE(id, DeviceClassId{3});
}

TEST(DeviceCatalog, EmptyRejected) {
  EXPECT_THROW(DeviceCatalog({}), std::invalid_argument);
}

TEST(DeviceCatalog, LegacyMixIsMostSensitive) {
  // Older radios feel bad coverage hardest — encoded in the catalog.
  const DeviceCatalog cat = DeviceCatalog::standard();
  double max_sensitivity = 0;
  DeviceClassId most{0};
  for (const auto& c : cat.all())
    if (c.network_sensitivity > max_sensitivity) {
      max_sensitivity = c.network_sensitivity;
      most = c.id;
    }
  EXPECT_EQ(most, DeviceClassId{4});
}

}  // namespace
}  // namespace litmus::dev
