#include "simkit/weather.h"

#include <gtest/gtest.h>

namespace litmus::sim {
namespace {

net::NetworkElement tower_at(net::GeoPoint p, std::uint32_t id = 1) {
  net::NetworkElement e;
  e.id = net::ElementId{id};
  e.kind = net::ElementKind::kNodeB;
  e.location = p;
  e.region = net::Region::kNortheast;
  return e;
}

constexpr net::GeoPoint kCenter{41.0, -74.0};

TEST(WeatherEvent, PresetsScaleWithSeverity) {
  const auto rain = make_event(WeatherKind::kRain, kCenter, 0, 24);
  const auto storm = make_event(WeatherKind::kSevereStorm, kCenter, 0, 24);
  const auto hurricane = make_event(WeatherKind::kHurricane, kCenter, 0, 24);
  EXPECT_LT(rain.peak_sigma, storm.peak_sigma);
  EXPECT_LT(storm.peak_sigma, hurricane.peak_sigma);
  EXPECT_DOUBLE_EQ(rain.outage_probability, 0.0);
  EXPECT_GT(hurricane.outage_probability, storm.outage_probability);
  EXPECT_EQ(rain.end_bin, 24);
}

TEST(WeatherFactor, QualityEffectNegativeInsideWindow) {
  const WeatherFactor f({make_event(WeatherKind::kWind, kCenter, 10, 20)});
  const auto e = tower_at(kCenter);
  EXPECT_LT(f.quality_effect(e, 20), 0.0);
  EXPECT_DOUBLE_EQ(f.quality_effect(e, 5), 0.0);    // before
  EXPECT_DOUBLE_EQ(f.quality_effect(e, 30), 0.0);   // after (end exclusive)
}

TEST(WeatherFactor, SpatialDecayWithDistance) {
  const auto ev = make_event(WeatherKind::kSevereStorm, kCenter, 0, 24);
  const WeatherFactor f({ev});
  const auto near = tower_at(kCenter);
  const auto mid = tower_at({kCenter.lat_deg + 1.0, kCenter.lon_deg});
  const auto far = tower_at({kCenter.lat_deg + 30.0, kCenter.lon_deg});
  const std::int64_t t = 12;
  EXPECT_LT(f.quality_effect(near, t), f.quality_effect(mid, t));
  EXPECT_DOUBLE_EQ(f.quality_effect(far, t), 0.0);
}

TEST(WeatherFactor, TemporalEnvelopePeaksMidEvent) {
  const WeatherFactor f({make_event(WeatherKind::kWind, kCenter, 0, 100)});
  const auto e = tower_at(kCenter);
  const double early = f.quality_effect(e, 2);
  const double peak = f.quality_effect(e, 40);
  const double late = f.quality_effect(e, 97);
  EXPECT_LT(peak, early);  // more negative at the peak
  EXPECT_LT(peak, late);
}

TEST(WeatherFactor, SevereEventsSpikeLoad) {
  const WeatherFactor storm(
      {make_event(WeatherKind::kSevereStorm, kCenter, 0, 24)});
  const WeatherFactor rain({make_event(WeatherKind::kRain, kCenter, 0, 24)});
  const auto e = tower_at(kCenter);
  EXPECT_GT(storm.load_factor(e, 12), 1.0);
  EXPECT_DOUBLE_EQ(rain.load_factor(e, 12), 1.0);
}

TEST(WeatherFactor, OutageOnlyDuringSevereEvents) {
  auto ev = make_event(WeatherKind::kHurricane, kCenter, 0, 48);
  ev.outage_probability = 1.0;  // force outages in the footprint
  const WeatherFactor f({ev});
  const auto e = tower_at(kCenter);
  EXPECT_TRUE(f.blackout(e, 12));
  EXPECT_FALSE(f.blackout(e, 100));  // outside the window
}

TEST(WeatherFactor, OutageDeterministicPerElement) {
  auto ev = make_event(WeatherKind::kHurricane, kCenter, 0, 48);
  ev.outage_probability = 0.5;
  const WeatherFactor f({ev}, /*seed=*/5);
  for (std::uint32_t id = 1; id < 30; ++id) {
    const auto e = tower_at(kCenter, id);
    EXPECT_EQ(f.blackout(e, 10), f.blackout(e, 20)) << id;
  }
}

TEST(WeatherFactor, OutagesOnlyHitTowers) {
  auto ev = make_event(WeatherKind::kHurricane, kCenter, 0, 48);
  ev.outage_probability = 1.0;
  const WeatherFactor f({ev});
  auto rnc = tower_at(kCenter);
  rnc.kind = net::ElementKind::kRnc;
  EXPECT_FALSE(f.blackout(rnc, 12));
}

TEST(WeatherFactor, MultipleEventsCompose) {
  const WeatherFactor f({make_event(WeatherKind::kWind, kCenter, 0, 24),
                         make_event(WeatherKind::kWind, kCenter, 0, 24)});
  const WeatherFactor single(
      {make_event(WeatherKind::kWind, kCenter, 0, 24)});
  const auto e = tower_at(kCenter);
  EXPECT_NEAR(f.quality_effect(e, 12), 2.0 * single.quality_effect(e, 12),
              1e-12);
}

TEST(WeatherKindNames, Distinct) {
  EXPECT_STREQ(to_string(WeatherKind::kRain), "rain");
  EXPECT_STREQ(to_string(WeatherKind::kHurricane), "hurricane");
}

}  // namespace
}  // namespace litmus::sim
