#include "simkit/network_events.h"

#include <gtest/gtest.h>

namespace litmus::sim {
namespace {

net::NetworkElement elem(std::uint32_t id, net::ElementKind kind,
                         net::ElementId parent = net::kInvalidElement) {
  net::NetworkElement e;
  e.id = net::ElementId{id};
  e.kind = kind;
  e.name = "e" + std::to_string(id);
  e.parent = parent;
  return e;
}

// RNC(1) -> NodeB(2,3,4); RNC(5) -> NodeB(6).
net::Topology topo() {
  net::Topology t;
  t.add(elem(1, net::ElementKind::kRnc));
  t.add(elem(2, net::ElementKind::kNodeB, net::ElementId{1}));
  t.add(elem(3, net::ElementKind::kNodeB, net::ElementId{1}));
  t.add(elem(4, net::ElementKind::kNodeB, net::ElementId{1}));
  t.add(elem(5, net::ElementKind::kRnc));
  t.add(elem(6, net::ElementKind::kNodeB, net::ElementId{5}));
  return t;
}

UpstreamEvent upgrade(net::ElementId source, double shift = 1.0) {
  UpstreamEvent ev;
  ev.source = source;
  ev.start_bin = 100;
  ev.sigma_shift = shift;
  return ev;
}

TEST(NetworkEvents, AffectsWholeSubtree) {
  const net::Topology t = topo();
  const NetworkEventFactor f(t, {upgrade(net::ElementId{1}, 2.0)});
  for (const std::uint32_t id : {1u, 2u, 3u, 4u})
    EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{id}), 150), 2.0);
  EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{6}), 150), 0.0);
}

TEST(NetworkEvents, InactiveBeforeStart) {
  const net::Topology t = topo();
  const NetworkEventFactor f(t, {upgrade(net::ElementId{1})});
  EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{2}), 99), 0.0);
  EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{2}), 100), 1.0);
}

TEST(NetworkEvents, EndBinExclusive) {
  const net::Topology t = topo();
  UpstreamEvent ev = upgrade(net::ElementId{1});
  ev.end_bin = 200;
  const NetworkEventFactor f(t, {ev});
  EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{2}), 199), 1.0);
  EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{2}), 200), 0.0);
}

TEST(NetworkEvents, RampInIsGradual) {
  const net::Topology t = topo();
  UpstreamEvent ev = upgrade(net::ElementId{1}, 2.0);
  ev.ramp_bins = 10;
  const NetworkEventFactor f(t, {ev});
  const auto& e = t.get(net::ElementId{2});
  EXPECT_LT(f.quality_effect(e, 100), 2.0);
  EXPECT_GT(f.quality_effect(e, 100), 0.0);
  EXPECT_LT(f.quality_effect(e, 104), f.quality_effect(e, 108));
  EXPECT_DOUBLE_EQ(f.quality_effect(e, 110), 2.0);
}

TEST(NetworkEvents, HitFractionSelectsSubset) {
  const net::Topology t = topo();
  UpstreamEvent ev = upgrade(net::ElementId{1});
  ev.hit_fraction = 0.5;
  ev.seed = 3;
  const NetworkEventFactor f(t, {ev});
  int hit = 0;
  for (const std::uint32_t id : {2u, 3u, 4u})
    if (f.quality_effect(t.get(net::ElementId{id}), 150) != 0.0) ++hit;
  EXPECT_GE(hit, 0);
  EXPECT_LE(hit, 3);
  // The source itself is always affected.
  EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{1}), 150), 1.0);
}

TEST(NetworkEvents, HitSelectionDeterministic) {
  const net::Topology t = topo();
  UpstreamEvent ev = upgrade(net::ElementId{1});
  ev.hit_fraction = 0.5;
  const NetworkEventFactor f1(t, {ev});
  const NetworkEventFactor f2(t, {ev});
  for (const std::uint32_t id : {2u, 3u, 4u})
    EXPECT_DOUBLE_EQ(f1.quality_effect(t.get(net::ElementId{id}), 150),
                     f2.quality_effect(t.get(net::ElementId{id}), 150));
}

TEST(NetworkEvents, MultipleEventsAdd) {
  const net::Topology t = topo();
  const NetworkEventFactor f(
      t, {upgrade(net::ElementId{1}, 1.0), upgrade(net::ElementId{1}, -0.4)});
  EXPECT_NEAR(f.quality_effect(t.get(net::ElementId{2}), 150), 0.6, 1e-12);
}

TEST(NetworkEvents, OutageBlackout) {
  const net::Topology t = topo();
  OutageEvent outage;
  outage.elements = {net::ElementId{2}, net::ElementId{6}};
  outage.start_bin = 10;
  outage.end_bin = 20;
  const NetworkEventFactor f(t, {}, {outage});
  EXPECT_TRUE(f.blackout(t.get(net::ElementId{2}), 15));
  EXPECT_TRUE(f.blackout(t.get(net::ElementId{6}), 10));
  EXPECT_FALSE(f.blackout(t.get(net::ElementId{2}), 20));
  EXPECT_FALSE(f.blackout(t.get(net::ElementId{3}), 15));
}

TEST(NetworkEvents, NoEventsMeansNeutral) {
  const net::Topology t = topo();
  const NetworkEventFactor f(t, {});
  EXPECT_DOUBLE_EQ(f.quality_effect(t.get(net::ElementId{1}), 0), 0.0);
  EXPECT_FALSE(f.blackout(t.get(net::ElementId{1}), 0));
  EXPECT_DOUBLE_EQ(f.load_factor(t.get(net::ElementId{1}), 0), 1.0);
}

}  // namespace
}  // namespace litmus::sim
