#include "simkit/generator.h"

#include <gtest/gtest.h>

#include <memory>

#include "cellnet/builder.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"
#include "tsmath/stats.h"

namespace litmus::sim {
namespace {

net::Topology small() {
  return net::build_small_region(net::Region::kNortheast, 7, 2, 6);
}

TEST(Generator, DeterministicForSameConfig) {
  const net::Topology t = small();
  const KpiGenerator a(t, {.seed = 5});
  const KpiGenerator b(t, {.seed = 5});
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  const auto sa = a.kpi_series(id, kpi::KpiId::kVoiceRetainability, 0, 100);
  const auto sb = b.kpi_series(id, kpi::KpiId::kVoiceRetainability, 0, 100);
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(Generator, DifferentSeedsDiffer) {
  const net::Topology t = small();
  const KpiGenerator a(t, {.seed = 5});
  const KpiGenerator b(t, {.seed = 6});
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  const auto sa = a.latent_series(id, 0, 50);
  const auto sb = b.latent_series(id, 0, 50);
  bool any_diff = false;
  for (std::size_t i = 0; i < sa.size(); ++i)
    if (sa[i] != sb[i]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, SameMarketMoreCorrelatedThanCrossRegion) {
  net::BuildSpec spec;
  spec.seed = 9;
  spec.regions = {net::Region::kNortheast, net::Region::kWest};
  spec.markets_per_region = 1;
  const net::Topology t = net::NetworkBuilder(spec).build();
  const KpiGenerator gen(t, {.seed = 12});

  const auto ne = t.in_region(net::Region::kNortheast);
  const auto west = t.in_region(net::Region::kWest);
  std::vector<net::ElementId> ne_towers, west_towers;
  for (const auto id : ne)
    if (t.get(id).kind == net::ElementKind::kNodeB) ne_towers.push_back(id);
  for (const auto id : west)
    if (t.get(id).kind == net::ElementKind::kNodeB) west_towers.push_back(id);
  ASSERT_GE(ne_towers.size(), 2u);
  ASSERT_GE(west_towers.size(), 1u);

  const auto a = gen.latent_series(ne_towers[0], 0, 500);
  const auto b = gen.latent_series(ne_towers[1], 0, 500);
  const auto c = gen.latent_series(west_towers[0], 0, 500);
  const double same_market = ts::pearson(a.values(), b.values());
  const double cross_region = ts::pearson(a.values(), c.values());
  EXPECT_GT(same_market, 0.4);  // paper Section 3.1, observation (i)
  EXPECT_GT(same_market, cross_region + 0.2);
}

TEST(Generator, KpiMappingHonoursPolarity) {
  const net::Topology t = small();
  KpiGenerator gen(t, {.seed = 20});
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();

  ts::TimeSeries latent(0, {2.0, -2.0});
  const auto retain =
      gen.latent_to_kpi(latent, kpi::KpiId::kVoiceRetainability);
  const auto dropped =
      gen.latent_to_kpi(latent, kpi::KpiId::kDroppedVoiceCallRatio);
  // Good latent -> higher retainability, lower dropped-call ratio.
  EXPECT_GT(retain[0], retain[1]);
  EXPECT_LT(dropped[0], dropped[1]);
  (void)id;
}

TEST(Generator, RatioKpiStaysInUnitInterval) {
  const net::Topology t = small();
  KpiGenerator gen(t, {.seed = 21});
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  const auto s = gen.kpi_series(id, kpi::KpiId::kVoiceAccessibility, 0, 2000);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (ts::is_missing(s[i])) continue;
    EXPECT_GE(s[i], 0.0);
    EXPECT_LE(s[i], 1.0);
  }
}

TEST(Generator, ThroughputNonNegativeAndNotRatio) {
  const net::Topology t = small();
  KpiGenerator gen(t, {.seed = 22});
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  const auto s = gen.kpi_series(id, kpi::KpiId::kDataThroughput, 0, 1000);
  double max_v = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s[i], 0.0);
    max_v = std::max(max_v, s[i]);
  }
  EXPECT_GT(max_v, 1.0);  // clearly not a [0,1] ratio
}

TEST(Generator, BlackoutProducesMissing) {
  const net::Topology t = small();
  KpiGenerator gen(t, {.seed = 23});
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  OutageEvent outage;
  outage.elements = {id};
  outage.start_bin = 10;
  outage.end_bin = 20;
  gen.add_factor(std::make_shared<NetworkEventFactor>(
      t, std::vector<UpstreamEvent>{}, std::vector<OutageEvent>{outage}));
  const auto s = gen.kpi_series(id, kpi::KpiId::kVoiceRetainability, 0, 30);
  for (std::int64_t b = 10; b < 20; ++b)
    EXPECT_TRUE(ts::is_missing(s.at_bin(b))) << b;
  EXPECT_FALSE(ts::is_missing(s.at_bin(5)));
  EXPECT_FALSE(ts::is_missing(s.at_bin(25)));
}

TEST(Generator, FactorQualityShiftsSeries) {
  const net::Topology t = small();
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  KpiGenerator plain(t, {.seed = 24});
  KpiGenerator shifted(t, {.seed = 24});
  UpstreamEvent ev;
  ev.source = id;
  ev.start_bin = 0;
  ev.sigma_shift = 3.0;
  shifted.add_factor(std::make_shared<NetworkEventFactor>(
      t, std::vector<UpstreamEvent>{ev}));
  const auto a = plain.latent_series(id, 0, 200);
  const auto b = shifted.latent_series(id, 0, 200);
  EXPECT_NEAR(ts::mean(b) - ts::mean(a), 3.0, 0.2);
}

TEST(Generator, LoadSeriesFollowsDiurnalFactor) {
  const net::Topology t = small();
  KpiGenerator gen(t, {.seed = 25});
  gen.add_factor(std::make_shared<DiurnalLoadFactor>(0.5));
  const auto towers = t.of_kind(net::ElementKind::kNodeB);
  // Average across towers to dampen the 5% noise.
  double peak = 0, night = 0;
  for (const auto id : towers) {
    const auto load = gen.load_series(id, 0, 24);
    peak += load.at_bin(19);   // evening (residential default mix)
    night += load.at_bin(3);
  }
  EXPECT_GT(peak, night);
}

TEST(Generator, VolumeScalesLoad) {
  const net::Topology t = small();
  GeneratorConfig cfg;
  cfg.seed = 26;
  cfg.base_voice_attempts = 100.0;
  KpiGenerator gen(t, cfg);
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  const auto load = gen.load_series(id, 0, 50);
  const auto vol = gen.volume_series(id, 0, 50);
  for (std::size_t i = 0; i < load.size(); ++i)
    EXPECT_NEAR(vol[i], 100.0 * load[i], 1e-9);
}

TEST(Generator, CongestionPenalizesQuality) {
  const net::Topology t = small();
  GeneratorConfig cfg;
  cfg.seed = 27;
  cfg.congestion_threshold = 0.5;  // everything is congested
  cfg.congestion_coeff = 2.0;
  KpiGenerator congested(t, cfg);
  GeneratorConfig relaxed = cfg;
  relaxed.congestion_threshold = 100.0;  // nothing is congested
  KpiGenerator free(t, relaxed);
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  EXPECT_LT(ts::mean(congested.latent_series(id, 0, 300)),
            ts::mean(free.latent_series(id, 0, 300)));
}

TEST(Generator, LoadingsWithinConfiguredSpread) {
  const net::Topology t = small();
  GeneratorConfig cfg;
  cfg.seed = 28;
  cfg.loading_spread = 0.2;
  const KpiGenerator gen(t, cfg);
  for (const auto id : t.all()) {
    const double l = gen.region_loading(id);
    EXPECT_GE(l, 0.8);
    EXPECT_LE(l, 1.2);
    const double c = gen.combined_loading(id);
    EXPECT_GE(c, 0.8);
    EXPECT_LE(c, 1.2);
  }
}

TEST(Generator, LatentIsRoughlyStandardized) {
  const net::Topology t = small();
  const KpiGenerator gen(t, {.seed = 29});
  const auto id = t.of_kind(net::ElementKind::kNodeB).front();
  const auto s = gen.latent_series(id, 0, 5000);
  // Mean near zero (no factors), total sigma of order 1-2.
  EXPECT_NEAR(ts::mean(s), 0.0, 0.8);
  const double sd = ts::stddev(s.values());
  EXPECT_GT(sd, 0.6);
  EXPECT_LT(sd, 2.5);
}

}  // namespace
}  // namespace litmus::sim
