#include "simkit/clock.h"

#include <gtest/gtest.h>

namespace litmus::sim {
namespace {

TEST(Clock, DayOfBin) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(23), 0);
  EXPECT_EQ(day_of(24), 1);
  EXPECT_EQ(day_of(-1), -1);
  EXPECT_EQ(day_of(-24), -1);
  EXPECT_EQ(day_of(-25), -2);
}

TEST(Clock, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(23), 23);
  EXPECT_EQ(hour_of_day(24), 0);
  EXPECT_EQ(hour_of_day(-1), 23);  // floor semantics for negative bins
}

TEST(Clock, DayOfWeekEpochIsMonday) {
  EXPECT_EQ(day_of_week(0), 0);
  EXPECT_EQ(day_of_week(5 * 24), 5);      // Saturday
  EXPECT_EQ(day_of_week(7 * 24), 0);      // Monday again
  EXPECT_EQ(day_of_week(-24), 6);         // Sunday before the epoch
}

TEST(Clock, Weekend) {
  EXPECT_FALSE(is_weekend(0));
  EXPECT_TRUE(is_weekend(5 * 24));
  EXPECT_TRUE(is_weekend(6 * 24 + 12));
  EXPECT_FALSE(is_weekend(7 * 24));
}

TEST(Clock, DayOfYearWraps) {
  EXPECT_EQ(day_of_year(0), 0);
  EXPECT_EQ(day_of_year(364 * 24), 364);
  EXPECT_EQ(day_of_year(365 * 24), 0);
  EXPECT_EQ(day_of_year(-24), 364);  // last day of the previous year
}

TEST(Clock, BinAt) {
  EXPECT_EQ(bin_at(0, 0, 0), 0);
  EXPECT_EQ(bin_at(0, 1, 0), 24);
  EXPECT_EQ(bin_at(1, 0, 0), 365 * 24);
  EXPECT_EQ(bin_at(1, 10, 5), 365 * 24 + 10 * 24 + 5);
  EXPECT_EQ(bin_at(-1, 364, 23), -1);
}

TEST(Clock, RoundTripBinAtDayOfYear) {
  for (const int doy : {0, 90, 184, 364})
    EXPECT_EQ(day_of_year(bin_at(2, doy, 13)), doy);
}

TEST(Clock, HolidayConstantsInRange) {
  for (const int doy : {kNewYearDoy, kIndependenceDoy, kThanksgivingDoy,
                        kChristmasDoy}) {
    EXPECT_GE(doy, 0);
    EXPECT_LT(doy, kDaysPerYear);
  }
}

}  // namespace
}  // namespace litmus::sim
