#include "simkit/traffic.h"

#include <gtest/gtest.h>

namespace litmus::sim {
namespace {

net::NetworkElement element_at(net::GeoPoint p,
                               net::Region region = net::Region::kMidwest) {
  net::NetworkElement e;
  e.id = net::ElementId{1};
  e.kind = net::ElementKind::kNodeB;
  e.location = p;
  e.region = region;
  return e;
}

constexpr net::GeoPoint kVenue{41.9, -87.6};

TEST(TrafficEvents, HolidayAppliesInWindow) {
  HolidayWindow h;
  h.start_bin = 100;
  h.end_bin = 200;
  h.load_multiplier = 1.5;
  const TrafficEventFactor f({h}, {});
  const auto e = element_at(kVenue);
  EXPECT_DOUBLE_EQ(f.load_factor(e, 150), 1.5);
  EXPECT_DOUBLE_EQ(f.load_factor(e, 99), 1.0);
  EXPECT_DOUBLE_EQ(f.load_factor(e, 200), 1.0);  // end exclusive
}

TEST(TrafficEvents, HolidayRegionGating) {
  HolidayWindow h;
  h.start_bin = 0;
  h.end_bin = 100;
  h.load_multiplier = 2.0;
  h.region = net::Region::kNortheast;
  const TrafficEventFactor f({h}, {});
  EXPECT_DOUBLE_EQ(
      f.load_factor(element_at(kVenue, net::Region::kNortheast), 50), 2.0);
  EXPECT_DOUBLE_EQ(
      f.load_factor(element_at(kVenue, net::Region::kMidwest), 50), 1.0);
}

TEST(TrafficEvents, NationwideHolidayWhenRegionUnset) {
  HolidayWindow h;
  h.start_bin = 0;
  h.end_bin = 10;
  h.load_multiplier = 1.3;
  const TrafficEventFactor f({h}, {});
  for (const auto r : {net::Region::kWest, net::Region::kSoutheast})
    EXPECT_DOUBLE_EQ(f.load_factor(element_at(kVenue, r), 5), 1.3);
}

TEST(TrafficEvents, VenueSpatialDecay) {
  VenueEvent v;
  v.venue = kVenue;
  v.radius_km = 8.0;
  v.start_bin = 0;
  v.end_bin = 6;
  v.peak_load_multiplier = 4.0;
  const TrafficEventFactor f({}, {v});
  const double at_venue = f.load_factor(element_at(kVenue), 3);
  const double nearby =
      f.load_factor(element_at({kVenue.lat_deg + 0.05, kVenue.lon_deg}), 3);
  const double far =
      f.load_factor(element_at({kVenue.lat_deg + 3.0, kVenue.lon_deg}), 3);
  EXPECT_NEAR(at_venue, 4.0, 1e-9);
  EXPECT_GT(nearby, 1.0);
  EXPECT_LT(nearby, at_venue);
  EXPECT_DOUBLE_EQ(far, 1.0);
}

TEST(TrafficEvents, VenueWindowGating) {
  VenueEvent v;
  v.venue = kVenue;
  v.start_bin = 10;
  v.end_bin = 16;
  const TrafficEventFactor f({}, {v});
  EXPECT_DOUBLE_EQ(f.load_factor(element_at(kVenue), 9), 1.0);
  EXPECT_GT(f.load_factor(element_at(kVenue), 12), 1.0);
  EXPECT_DOUBLE_EQ(f.load_factor(element_at(kVenue), 16), 1.0);
}

TEST(TrafficEvents, HolidayAndVenueCompose) {
  HolidayWindow h;
  h.start_bin = 0;
  h.end_bin = 100;
  h.load_multiplier = 1.5;
  VenueEvent v;
  v.venue = kVenue;
  v.start_bin = 0;
  v.end_bin = 100;
  v.peak_load_multiplier = 2.0;
  const TrafficEventFactor f({h}, {v});
  EXPECT_NEAR(f.load_factor(element_at(kVenue), 50), 3.0, 1e-9);
}

TEST(TrafficEvents, NoQualityChannel) {
  const TrafficEventFactor f({}, {});
  EXPECT_DOUBLE_EQ(f.quality_effect(element_at(kVenue), 0), 0.0);
}

}  // namespace
}  // namespace litmus::sim
