#include "simkit/injection.h"

#include <gtest/gtest.h>

namespace litmus::sim {
namespace {

TEST(Injection, SigmaToKpiDeltaHonoursPolarity) {
  // +2 sigma improves service: retainability rises...
  EXPECT_GT(sigma_to_kpi_delta(kpi::KpiId::kVoiceRetainability, 2.0), 0.0);
  // ...while the dropped-call ratio falls.
  EXPECT_LT(sigma_to_kpi_delta(kpi::KpiId::kDroppedVoiceCallRatio, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(sigma_to_kpi_delta(kpi::KpiId::kVoiceRetainability, 0.0),
                   0.0);
}

TEST(Injection, DeltaScalesWithKpiNoise) {
  const double d1 = sigma_to_kpi_delta(kpi::KpiId::kVoiceRetainability, 1.0);
  const double d2 = sigma_to_kpi_delta(kpi::KpiId::kVoiceRetainability, 2.0);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-12);
  EXPECT_NEAR(d1, kpi::info(kpi::KpiId::kVoiceRetainability).typical_noise,
              1e-12);
}

TEST(Injection, LevelShiftFromBinOnward) {
  ts::TimeSeries s(0, std::vector<double>(10, 0.5));
  Injection inj;
  inj.at_bin = 4;
  inj.magnitude_sigma = 2.0;
  apply_injection(s, kpi::KpiId::kVoiceRetainability, inj);
  const double delta =
      sigma_to_kpi_delta(kpi::KpiId::kVoiceRetainability, 2.0);
  for (std::int64_t b = 0; b < 4; ++b) EXPECT_DOUBLE_EQ(s.at_bin(b), 0.5);
  for (std::int64_t b = 4; b < 10; ++b)
    EXPECT_DOUBLE_EQ(s.at_bin(b), 0.5 + delta);
}

TEST(Injection, RampReachesFullMagnitudeAndPersists) {
  ts::TimeSeries s(0, std::vector<double>(20, 0.5));
  Injection inj;
  inj.at_bin = 2;
  inj.magnitude_sigma = 2.0;
  inj.shape = InjectionShape::kRamp;
  inj.ramp_bins = 6;
  apply_injection(s, kpi::KpiId::kVoiceRetainability, inj);
  const double delta =
      sigma_to_kpi_delta(kpi::KpiId::kVoiceRetainability, 2.0);
  EXPECT_DOUBLE_EQ(s.at_bin(1), 0.5);
  EXPECT_DOUBLE_EQ(s.at_bin(2), 0.5);  // ramp starts at zero
  EXPECT_LT(s.at_bin(4), 0.5 + delta);
  EXPECT_GT(s.at_bin(4), 0.5);
  for (std::int64_t b = 8; b < 20; ++b)
    EXPECT_NEAR(s.at_bin(b), 0.5 + delta, 1e-12);
}

TEST(Injection, RatioClampedAfterInjection) {
  ts::TimeSeries s(0, std::vector<double>(5, 0.999));
  Injection inj;
  inj.at_bin = 0;
  inj.magnitude_sigma = 10.0;  // would push past 1.0
  apply_injection(s, kpi::KpiId::kVoiceRetainability, inj);
  for (std::int64_t b = 0; b < 5; ++b) EXPECT_DOUBLE_EQ(s.at_bin(b), 1.0);
}

TEST(Injection, ThroughputNotClamped) {
  ts::TimeSeries s(0, std::vector<double>(5, 12.0));
  Injection inj;
  inj.at_bin = 0;
  inj.magnitude_sigma = 10.0;
  apply_injection(s, kpi::KpiId::kDataThroughput, inj);
  EXPECT_GT(s.at_bin(0), 12.0 + 5.0);
}

TEST(Injection, MissingBinsUntouched) {
  ts::TimeSeries s(0, {0.5, ts::kMissing, 0.5});
  Injection inj;
  inj.at_bin = 0;
  inj.magnitude_sigma = 1.0;
  apply_injection(s, kpi::KpiId::kVoiceRetainability, inj);
  EXPECT_TRUE(ts::is_missing(s.at_bin(1)));
  EXPECT_GT(s.at_bin(0), 0.5);
}

TEST(Injection, NegativeMagnitudeDegrades) {
  ts::TimeSeries s(0, std::vector<double>(4, 0.5));
  Injection inj;
  inj.at_bin = 0;
  inj.magnitude_sigma = -2.0;
  apply_injection(s, kpi::KpiId::kVoiceRetainability, inj);
  EXPECT_LT(s.at_bin(0), 0.5);
}

}  // namespace
}  // namespace litmus::sim
