#include "simkit/counter_generator.h"

#include <gtest/gtest.h>

#include <memory>

#include "cellnet/builder.h"
#include "kpi/aggregate.h"
#include "simkit/network_events.h"
#include "tsmath/stats.h"

namespace litmus::sim {
namespace {

struct Fixture {
  net::Topology topo;
  std::unique_ptr<KpiGenerator> gen;
  net::ElementId tower;

  explicit Fixture(std::uint64_t seed = 313) {
    topo = net::build_small_region(net::Region::kWest, seed, 2, 4);
    gen = std::make_unique<KpiGenerator>(topo, GeneratorConfig{.seed = seed});
    tower = topo.of_kind(net::ElementKind::kNodeB).front();
  }
};

TEST(CounterGenerator, RatesRespondToQualityAndLoad) {
  Fixture f;
  const CounterGenerator cg(*f.gen);
  const kpi::SessionRates neutral = cg.rates_for(0.0, 1.0);
  const kpi::SessionRates good = cg.rates_for(2.0, 1.0);
  const kpi::SessionRates bad = cg.rates_for(-2.0, 1.0);
  const kpi::SessionRates busy = cg.rates_for(0.0, 2.0);

  EXPECT_LT(good.voice_drop_prob, neutral.voice_drop_prob);
  EXPECT_GT(bad.voice_drop_prob, neutral.voice_drop_prob);
  EXPECT_LT(good.data_block_prob, neutral.data_block_prob);
  EXPECT_NEAR(busy.voice_attempts_per_bin,
              2.0 * neutral.voice_attempts_per_bin, 1e-9);
}

TEST(CounterGenerator, FailureProbabilityClamped) {
  Fixture f;
  CounterModel model;
  model.max_failure_probability = 0.5;
  const CounterGenerator cg(*f.gen, model);
  const kpi::SessionRates awful = cg.rates_for(-50.0, 1.0);
  EXPECT_LE(awful.voice_drop_prob, 0.5);
  EXPECT_LE(awful.voice_block_prob, 0.5);
}

TEST(CounterGenerator, Deterministic) {
  Fixture f;
  const CounterGenerator a(*f.gen), b(*f.gen);
  const auto ca = a.counters(f.tower, 0, 48);
  const auto cb = b.counters(f.tower, 0, 48);
  for (std::int64_t bin = 0; bin < 48; ++bin) {
    EXPECT_EQ(ca.at_bin(bin).voice_attempts, cb.at_bin(bin).voice_attempts);
    EXPECT_EQ(ca.at_bin(bin).voice_dropped, cb.at_bin(bin).voice_dropped);
  }
}

TEST(CounterGenerator, KpiSeriesNearLatentOperatingPoint) {
  Fixture f;
  const CounterGenerator cg(*f.gen);
  const ts::TimeSeries retain =
      cg.kpi_series(f.tower, kpi::KpiId::kVoiceRetainability, 0, 14 * 24);
  // Baseline drop prob 2% -> retainability ~0.98 give or take quality swing.
  const double m = ts::mean(retain);
  EXPECT_GT(m, 0.93);
  EXPECT_LT(m, 0.999);
}

TEST(CounterGenerator, QualityShiftMovesCounterKpis) {
  Fixture f;
  UpstreamEvent degrade;
  degrade.source = f.tower;
  degrade.start_bin = 0;
  degrade.sigma_shift = -2.5;
  f.gen->add_factor(std::make_shared<NetworkEventFactor>(
      f.topo, std::vector<UpstreamEvent>{degrade}));
  const CounterGenerator cg(*f.gen);
  const ts::TimeSeries retain =
      cg.kpi_series(f.tower, kpi::KpiId::kVoiceRetainability, -7 * 24,
                    14 * 24);
  const double before = ts::mean(retain.slice_bins(-7 * 24, 0));
  const double after = ts::mean(retain.slice_bins(0, 7 * 24));
  EXPECT_LT(after, before - 0.005);
}

TEST(CounterGenerator, OutageProducesZeroAttemptsAndMissingKpi) {
  Fixture f;
  OutageEvent outage;
  outage.elements = {f.tower};
  outage.start_bin = 5;
  outage.end_bin = 10;
  f.gen->add_factor(std::make_shared<NetworkEventFactor>(
      f.topo, std::vector<UpstreamEvent>{}, std::vector<OutageEvent>{outage}));
  const CounterGenerator cg(*f.gen);
  const auto counters = cg.counters(f.tower, 0, 20);
  EXPECT_EQ(counters.at_bin(7).voice_attempts, 0u);
  EXPECT_GT(counters.at_bin(2).voice_attempts, 0u);
  const auto kpis = counters.kpi_series(kpi::KpiId::kVoiceAccessibility);
  EXPECT_TRUE(ts::is_missing(kpis.at_bin(7)));
  EXPECT_FALSE(ts::is_missing(kpis.at_bin(2)));
}

TEST(CounterGenerator, AggregatesAcrossElements) {
  Fixture f;
  const CounterGenerator cg(*f.gen);
  const auto towers = f.topo.of_kind(net::ElementKind::kNodeB);
  std::vector<kpi::CounterSeries> per_element;
  for (const auto t : towers) per_element.push_back(cg.counters(t, 0, 24));
  const ts::TimeSeries agg =
      kpi::aggregate_kpi(per_element, kpi::KpiId::kVoiceRetainability);
  EXPECT_EQ(agg.size(), 24u);
  EXPECT_GT(ts::mean(agg), 0.9);
}

}  // namespace
}  // namespace litmus::sim
