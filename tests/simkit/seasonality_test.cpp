#include "simkit/seasonality.h"

#include <gtest/gtest.h>

#include "simkit/clock.h"

namespace litmus::sim {
namespace {

net::NetworkElement make_element(net::Region region,
                                 net::Terrain terrain = net::Terrain::kRural,
                                 net::TrafficProfile traffic =
                                     net::TrafficProfile::kResidential) {
  net::NetworkElement e;
  e.id = net::ElementId{7};
  e.kind = net::ElementKind::kNodeB;
  e.region = region;
  e.config.terrain = terrain;
  e.config.traffic = traffic;
  return e;
}

TEST(Foliage, LeafFractionPhases) {
  EXPECT_DOUBLE_EQ(FoliageFactor::leaf_fraction(0), 0.0);     // winter
  EXPECT_DOUBLE_EQ(FoliageFactor::leaf_fraction(364), 0.0);   // winter
  EXPECT_DOUBLE_EQ(FoliageFactor::leaf_fraction(180), 1.0);   // mid-summer
  const double budding = FoliageFactor::leaf_fraction(105);   // mid-April
  EXPECT_GT(budding, 0.0);
  EXPECT_LT(budding, 1.0);
  const double falling = FoliageFactor::leaf_fraction(274);   // October
  EXPECT_GT(falling, 0.0);
  EXPECT_LT(falling, 1.0);
}

TEST(Foliage, LeafFractionMonotoneOnRamps) {
  for (int d = 91; d < 120; ++d)
    EXPECT_GE(FoliageFactor::leaf_fraction(d),
              FoliageFactor::leaf_fraction(d - 1));
  for (int d = 245; d < 304; ++d)
    EXPECT_LE(FoliageFactor::leaf_fraction(d),
              FoliageFactor::leaf_fraction(d - 1));
}

TEST(Foliage, OnlyFoliageRegionsAffected) {
  const FoliageFactor f(2.0);
  const auto ne = make_element(net::Region::kNortheast);
  const auto se = make_element(net::Region::kSoutheast);
  const std::int64_t summer = bin_at(0, 180);
  EXPECT_LT(f.quality_effect(ne, summer), 0.0);
  EXPECT_DOUBLE_EQ(f.quality_effect(se, summer), 0.0);
}

TEST(Foliage, NoEffectInWinter) {
  const FoliageFactor f(2.0);
  const auto ne = make_element(net::Region::kNortheast);
  EXPECT_DOUBLE_EQ(f.quality_effect(ne, bin_at(0, 20)), 0.0);
}

TEST(Foliage, UrbanLessAffectedThanRural) {
  const FoliageFactor f(2.0);
  const auto urban =
      make_element(net::Region::kNortheast, net::Terrain::kUrban);
  const auto rural =
      make_element(net::Region::kNortheast, net::Terrain::kRural);
  const std::int64_t summer = bin_at(0, 180);
  // Intensity draws share the element id, so terrain scaling dominates.
  EXPECT_GT(f.quality_effect(urban, summer), f.quality_effect(rural, summer));
}

TEST(Foliage, IntensityDeterministicPerElement) {
  const FoliageFactor f(2.0, 99);
  const auto e = make_element(net::Region::kNortheast);
  EXPECT_DOUBLE_EQ(f.intensity(e), f.intensity(e));
}

TEST(DiurnalLoad, BusinessPeaksOnWeekdayWorkingHours) {
  const DiurnalLoadFactor f(0.4);
  const auto biz = make_element(net::Region::kWest, net::Terrain::kUrban,
                                net::TrafficProfile::kBusiness);
  const double peak = f.load_factor(biz, 11);          // Monday 11:00
  const double night = f.load_factor(biz, 3);          // Monday 03:00
  const double weekend = f.load_factor(biz, 5 * 24 + 11);  // Saturday 11:00
  EXPECT_GT(peak, 1.1);
  EXPECT_LT(night, 0.8);
  EXPECT_LT(weekend, peak - 0.3);
}

TEST(DiurnalLoad, ResidentialPeaksInEvening) {
  const DiurnalLoadFactor f(0.4);
  const auto res = make_element(net::Region::kWest, net::Terrain::kSuburban,
                                net::TrafficProfile::kResidential);
  EXPECT_GT(f.load_factor(res, 20), f.load_factor(res, 11));
  EXPECT_GT(f.load_factor(res, 20), f.load_factor(res, 3));
}

TEST(DiurnalLoad, RecreationPeaksOnWeekend) {
  const DiurnalLoadFactor f(0.4);
  const auto rec = make_element(net::Region::kWest, net::Terrain::kWater,
                                net::TrafficProfile::kRecreation);
  EXPECT_GT(f.load_factor(rec, 5 * 24 + 14), f.load_factor(rec, 14));
}

TEST(DiurnalLoad, HighwayPeaksAtCommute) {
  const DiurnalLoadFactor f(0.4);
  const auto hw = make_element(net::Region::kWest, net::Terrain::kFlat,
                               net::TrafficProfile::kHighway);
  EXPECT_GT(f.load_factor(hw, 8), f.load_factor(hw, 13));
  EXPECT_GT(f.load_factor(hw, 17), f.load_factor(hw, 13));
}

TEST(DiurnalLoad, LoadAlwaysPositive) {
  const DiurnalLoadFactor f(0.9);
  const auto e = make_element(net::Region::kWest);
  for (int h = 0; h < kHoursPerWeek; ++h) EXPECT_GT(f.load_factor(e, h), 0.0);
}

TEST(DiurnalLoad, NoQualityChannel) {
  const DiurnalLoadFactor f(0.4);
  EXPECT_DOUBLE_EQ(f.quality_effect(make_element(net::Region::kWest), 12),
                   0.0);
}

TEST(CarrierTrend, LinearInTime) {
  const CarrierTrendFactor f(0.5);
  const auto e = make_element(net::Region::kWest);
  EXPECT_DOUBLE_EQ(f.quality_effect(e, 0), 0.0);
  EXPECT_NEAR(f.quality_effect(e, kHoursPerYear), 0.5, 1e-12);
  EXPECT_NEAR(f.quality_effect(e, 2 * kHoursPerYear), 1.0, 1e-12);
  EXPECT_NEAR(f.quality_effect(e, -kHoursPerYear), -0.5, 1e-12);
}

}  // namespace
}  // namespace litmus::sim
