#include "changelog/changelog.h"

#include <gtest/gtest.h>

namespace litmus::chg {
namespace {

net::NetworkElement elem(std::uint32_t id, net::ElementKind kind,
                         net::ElementId parent = net::kInvalidElement) {
  net::NetworkElement e;
  e.id = net::ElementId{id};
  e.kind = kind;
  e.name = "e" + std::to_string(id);
  e.parent = parent;
  return e;
}

net::Topology topo() {
  net::Topology t;
  t.add(elem(1, net::ElementKind::kRnc));
  t.add(elem(2, net::ElementKind::kNodeB, net::ElementId{1}));
  t.add(elem(3, net::ElementKind::kNodeB, net::ElementId{1}));
  t.add(elem(4, net::ElementKind::kRnc));
  t.add(elem(5, net::ElementKind::kNodeB, net::ElementId{4}));
  t.add_neighbor_link(net::ElementId{3}, net::ElementId{5});
  return t;
}

ChangeRecord record(net::ElementId element, std::int64_t bin,
                    ChangeType type = ChangeType::kConfigChange) {
  ChangeRecord r;
  r.element = element;
  r.bin = bin;
  r.type = type;
  return r;
}

TEST(ChangeLog, AddAssignsSequentialIds) {
  ChangeLog log;
  const ChangeId a = log.add(record(net::ElementId{1}, 0));
  const ChangeId b = log.add(record(net::ElementId{2}, 5));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(ChangeLog, FindById) {
  ChangeLog log;
  const ChangeId id = log.add(record(net::ElementId{3}, 7));
  const auto found = log.find(id);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->element, net::ElementId{3});
  EXPECT_FALSE(log.find(999).has_value());
}

TEST(ChangeLog, AtElementSortedByBin) {
  ChangeLog log;
  log.add(record(net::ElementId{1}, 50));
  log.add(record(net::ElementId{1}, 10));
  log.add(record(net::ElementId{2}, 20));
  const auto v = log.at_element(net::ElementId{1});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].bin, 10);
  EXPECT_EQ(v[1].bin, 50);
}

TEST(ChangeLog, InWindowHalfOpen) {
  ChangeLog log;
  log.add(record(net::ElementId{1}, 10));
  log.add(record(net::ElementId{1}, 20));
  log.add(record(net::ElementId{1}, 30));
  const auto v = log.in_window(10, 30);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].bin, 10);
  EXPECT_EQ(v[1].bin, 20);
}

TEST(ChangeLog, ConflictingChangesUsesImpactScope) {
  const net::Topology t = topo();
  ChangeLog log;
  const ChangeId mine = log.add(record(net::ElementId{1}, 100));
  log.add(record(net::ElementId{2}, 110));  // inside subtree of 1
  log.add(record(net::ElementId{5}, 120));  // neighbor of tower 3 -> in scope
  log.add(record(net::ElementId{4}, 130));  // unrelated RNC, not in scope

  const auto conflicts =
      log.conflicting_changes(t, net::ElementId{1}, 90, 200, mine);
  ASSERT_EQ(conflicts.size(), 2u);
  EXPECT_EQ(conflicts[0].element, net::ElementId{2});
  EXPECT_EQ(conflicts[1].element, net::ElementId{5});
}

TEST(ChangeLog, ConflictExcludesOwnRecord) {
  const net::Topology t = topo();
  ChangeLog log;
  ChangeRecord r = record(net::ElementId{1}, 100);
  const ChangeId id = log.add(r);
  EXPECT_TRUE(log.conflicting_changes(t, net::ElementId{1}, 0, 200, id)
                  .empty());
}

TEST(ChangeLog, WindowIsCleanChecksBothSides) {
  const net::Topology t = topo();
  ChangeLog log;
  ChangeRecord mine = record(net::ElementId{1}, 100);
  mine.id = log.add(mine);

  EXPECT_TRUE(log.window_is_clean(t, mine, 50, 50));
  log.add(record(net::ElementId{2}, 60));  // inside lookback
  EXPECT_FALSE(log.window_is_clean(t, mine, 50, 50));
  EXPECT_TRUE(log.window_is_clean(t, mine, 30, 50));  // 60 < 100-30
}

TEST(ChangeRecord, EnumNames) {
  EXPECT_STREQ(to_string(ChangeType::kSoftwareUpgrade), "software_upgrade");
  EXPECT_STREQ(to_string(ChangeFrequency::kLow), "low");
  EXPECT_STREQ(to_string(Expectation::kImprovement), "improvement");
}

TEST(ChangeRecord, DefaultsAreLowFrequencyNoImpact) {
  const ChangeRecord r;
  EXPECT_EQ(r.frequency, ChangeFrequency::kLow);
  EXPECT_EQ(r.expectation, Expectation::kNoImpact);
  EXPECT_FALSE(r.is_ffa);
}

}  // namespace
}  // namespace litmus::chg
