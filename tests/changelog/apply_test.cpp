#include "changelog/apply.h"

#include <gtest/gtest.h>

namespace litmus::chg {
namespace {

net::Topology topo() {
  net::Topology t;
  auto add = [&](std::uint32_t id, net::ElementKind kind,
                 net::ElementId parent = net::kInvalidElement) {
    net::NetworkElement e;
    e.id = net::ElementId{id};
    e.kind = kind;
    e.name = "e" + std::to_string(id);
    e.parent = parent;
    t.add(e);
  };
  add(1, net::ElementKind::kMsc);
  add(2, net::ElementKind::kRnc, net::ElementId{1});
  add(3, net::ElementKind::kRnc, net::ElementId{1});
  add(4, net::ElementKind::kNodeB, net::ElementId{2});
  return t;
}

ChangeRecord record(ChangeType type, std::uint32_t element,
                    std::string parameter) {
  ChangeRecord r;
  r.type = type;
  r.element = net::ElementId{element};
  r.parameter = std::move(parameter);
  return r;
}

TEST(ApplyChange, SoftwareUpgrade) {
  net::Topology t = topo();
  const auto r =
      apply_change(record(ChangeType::kSoftwareUpgrade, 2, "6.1.4"), t);
  ASSERT_TRUE(r.applied) << r.message;
  EXPECT_EQ(t.get(net::ElementId{2}).config.software,
            (net::SoftwareVersion{6, 1, 4}));
}

TEST(ApplyChange, SoftwareUpgradeBadVersion) {
  net::Topology t = topo();
  EXPECT_FALSE(
      apply_change(record(ChangeType::kSoftwareUpgrade, 2, "latest"), t)
          .applied);
}

TEST(ApplyChange, HardwareUpgrade) {
  net::Topology t = topo();
  ASSERT_TRUE(
      apply_change(record(ChangeType::kHardwareUpgrade, 4, "model=RBS6601"),
                   t)
          .applied);
  EXPECT_EQ(t.get(net::ElementId{4}).config.equipment_model, "RBS6601");
  EXPECT_FALSE(
      apply_change(record(ChangeType::kHardwareUpgrade, 4, "RBS6601"), t)
          .applied);
}

TEST(ApplyChange, FeatureActivationToggle) {
  net::Topology t = topo();
  ASSERT_TRUE(
      apply_change(record(ChangeType::kFeatureActivation, 4, "son=on"), t)
          .applied);
  EXPECT_TRUE(t.get(net::ElementId{4}).config.son_enabled);
  ASSERT_TRUE(
      apply_change(record(ChangeType::kFeatureActivation, 4, "son=off"), t)
          .applied);
  EXPECT_FALSE(t.get(net::ElementId{4}).config.son_enabled);
  EXPECT_FALSE(
      apply_change(record(ChangeType::kFeatureActivation, 4, "son=maybe"), t)
          .applied);
}

TEST(ApplyChange, ConfigParameters) {
  net::Topology t = topo();
  ASSERT_TRUE(apply_change(record(ChangeType::kConfigChange, 4,
                                  "antenna.tilt_deg=4.5"),
                           t)
                  .applied);
  EXPECT_DOUBLE_EQ(t.get(net::ElementId{4}).config.antenna.tilt_deg, 4.5);
  ASSERT_TRUE(apply_change(record(ChangeType::kConfigChange, 2,
                                  "gold.radio_link_failure_timer_ms=4000"),
                           t)
                  .applied);
  EXPECT_EQ(
      t.get(net::ElementId{2}).config.gold.radio_link_failure_timer_ms, 4000);
  ASSERT_TRUE(apply_change(record(ChangeType::kConfigChange, 2,
                                  "gold.access_threshold_dbm=-108"),
                           t)
                  .applied);
  EXPECT_EQ(t.get(net::ElementId{2}).config.gold.access_threshold_dbm, -108);
}

TEST(ApplyChange, ConfigRejectsUnknownKeyAndBadValues) {
  net::Topology t = topo();
  EXPECT_FALSE(
      apply_change(record(ChangeType::kConfigChange, 4, "frobnicate=1"), t)
          .applied);
  EXPECT_FALSE(
      apply_change(record(ChangeType::kConfigChange, 4, "antenna.tilt_deg=x"),
                   t)
          .applied);
  EXPECT_FALSE(apply_change(record(ChangeType::kConfigChange, 4,
                                   "gold.radio_link_failure_timer_ms=-5"),
                            t)
                   .applied);
  EXPECT_FALSE(
      apply_change(record(ChangeType::kConfigChange, 4, "notanassignment"), t)
          .applied);
}

TEST(ApplyChange, RehomeMovesSubtree) {
  net::Topology t = topo();
  ASSERT_TRUE(
      apply_change(record(ChangeType::kTopologyChange, 4, "parent=3"), t)
          .applied);
  EXPECT_EQ(t.get(net::ElementId{4}).parent, net::ElementId{3});
  EXPECT_EQ(t.children_of(net::ElementId{3}).size(), 1u);
  EXPECT_TRUE(t.children_of(net::ElementId{2}).empty());
}

TEST(ApplyChange, RehomeRejectsCycles) {
  net::Topology t = topo();
  // RNC 2 under its own child NodeB 4: cycle.
  EXPECT_FALSE(
      apply_change(record(ChangeType::kTopologyChange, 2, "parent=4"), t)
          .applied);
  // Self-parenting.
  EXPECT_FALSE(
      apply_change(record(ChangeType::kTopologyChange, 2, "parent=2"), t)
          .applied);
  // Unknown parent.
  EXPECT_FALSE(
      apply_change(record(ChangeType::kTopologyChange, 2, "parent=99"), t)
          .applied);
}

TEST(ApplyChange, UnknownElementFails) {
  net::Topology t = topo();
  EXPECT_FALSE(
      apply_change(record(ChangeType::kSoftwareUpgrade, 42, "1.0.0"), t)
          .applied);
}

TEST(ApplyChange, TrafficMoveIsNoOp) {
  net::Topology t = topo();
  const auto r = apply_change(record(ChangeType::kTrafficMove, 1, ""), t);
  EXPECT_TRUE(r.applied);
}

}  // namespace
}  // namespace litmus::chg
