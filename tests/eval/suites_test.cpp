// Tests for the Table 2/3/4 evaluation suites. Full-scale sweeps run in the
// benches; here we verify structure, determinism, and that the headline
// orderings hold on reduced-but-meaningful workloads.
#include <gtest/gtest.h>

#include "eval/known_assessments.h"
#include "eval/synthetic.h"

namespace litmus::eval {
namespace {

TEST(KnownAssessments, RowsCover313Cases) {
  std::size_t cases = 0;
  for (const auto& row : table2_rows()) cases += row.n_study * row.kpis.size();
  EXPECT_EQ(cases, 313u);  // the paper's Table 2 total
}

TEST(KnownAssessments, NineteenRowsAsInTable2) {
  EXPECT_EQ(table2_rows().size(), 19u);
}

TEST(KnownAssessments, RowRunIsDeterministic) {
  const auto rows = table2_rows();
  const RowResult a = run_row(rows[1], 42);
  const RowResult b = run_row(rows[1], 42);
  EXPECT_EQ(a.litmus.tp, b.litmus.tp);
  EXPECT_EQ(a.study_only.fp, b.study_only.fp);
  EXPECT_EQ(a.did.fn, b.did.fn);
}

TEST(KnownAssessments, CleanRowIsAllTruePositives) {
  // Row 2 ("Radio link failure timer") has no confound and a clear effect:
  // every algorithm should nail all 3 cases.
  const auto rows = table2_rows();
  const RowResult r = run_row(rows[1], 7);
  EXPECT_EQ(r.study_only.tp, 3u);
  EXPECT_EQ(r.did.tp, 3u);
  EXPECT_EQ(r.litmus.tp, 3u);
}

TEST(KnownAssessments, ConfoundedNullRowFoolsStudyOnlyNotLitmus) {
  // Row 4 ("Radio link" at 25 NodeBs, other change): truly no impact.
  const auto rows = table2_rows();
  const RowResult r = run_row(rows[3], 7);
  EXPECT_EQ(r.litmus.total(), 25u);
  EXPECT_GT(r.study_only.fp, 15u);          // fooled nearly everywhere
  EXPECT_GT(r.litmus.tn, r.study_only.tn);  // Litmus mostly clean
}

TEST(KnownAssessments, FullRunSummaryOrdering) {
  const KnownAssessmentResults r = run_known_assessments(2011);
  EXPECT_EQ(r.cases, 313u);
  // The paper's headline: Litmus > DiD > study-only in accuracy; Litmus
  // recall strictly above DiD's.
  EXPECT_GT(r.total.litmus.accuracy(), r.total.did.accuracy());
  EXPECT_GT(r.total.did.accuracy(), r.total.study_only.accuracy());
  EXPECT_GT(r.total.litmus.recall(), r.total.did.recall());
  EXPECT_GE(r.total.litmus.recall(), 0.95);
  EXPECT_FALSE(format_table2(r).empty());
}

TEST(KnownAssessments, AdaptiveSamplingZeroVerdictFlipsOnTable2) {
  // The ISSUE-10 accuracy gate: enabling adaptive early stopping must not
  // flip a single verdict across all 313 Table-2 cases. Case-for-case, not
  // just aggregate counts — episodes are deterministic in the seed, so the
  // two verdict vectors align.
  core::SpatialRegressionParams off;
  core::SpatialRegressionParams on;
  on.adaptive_sampling = true;
  std::uint64_t row_counter = 0;
  std::size_t cases = 0;
  for (const KnownChangeRow& row : table2_rows()) {
    const std::uint64_t seed = 2011 + (++row_counter) * 104729;
    const std::vector<core::Verdict> full = row_litmus_verdicts(row, seed, off);
    const std::vector<core::Verdict> adaptive =
        row_litmus_verdicts(row, seed, on);
    ASSERT_EQ(full.size(), adaptive.size()) << row.change_type;
    for (std::size_t i = 0; i < full.size(); ++i)
      EXPECT_EQ(full[i], adaptive[i])
          << row.change_type << " case " << i << ": "
          << core::to_string(full[i]) << " -> " << core::to_string(adaptive[i]);
    cases += full.size();
  }
  EXPECT_EQ(cases, 313u);
}

TEST(Synthetic, TrialDeterministicForSameSeed) {
  const SyntheticConfig cfg;
  const TrialOutcome a = run_trial(cfg, InjectionPattern::kStudyOnly,
                                   net::Region::kWest,
                                   kpi::KpiId::kVoiceRetainability, 99);
  const TrialOutcome b = run_trial(cfg, InjectionPattern::kStudyOnly,
                                   net::Region::kWest,
                                   kpi::KpiId::kVoiceRetainability, 99);
  EXPECT_EQ(a.truth, b.truth);
  EXPECT_EQ(a.litmus, b.litmus);
  EXPECT_EQ(a.did, b.did);
}

TEST(Synthetic, PatternsImplyTruthSides) {
  const SyntheticConfig cfg;
  std::uint64_t seed = 1;
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(run_trial(cfg, InjectionPattern::kNone, net::Region::kWest,
                        kpi::KpiId::kVoiceRetainability, seed++)
                  .truth,
              core::Verdict::kNoImpact);
    EXPECT_EQ(run_trial(cfg, InjectionPattern::kBothSameMagnitude,
                        net::Region::kWest,
                        kpi::KpiId::kVoiceRetainability, seed++)
                  .truth,
              core::Verdict::kNoImpact);
    EXPECT_NE(run_trial(cfg, InjectionPattern::kStudyOnly, net::Region::kWest,
                        kpi::KpiId::kVoiceRetainability, seed++)
                  .truth,
              core::Verdict::kNoImpact);
    EXPECT_NE(run_trial(cfg, InjectionPattern::kControlOnly,
                        net::Region::kWest,
                        kpi::KpiId::kVoiceRetainability, seed++)
                  .truth,
              core::Verdict::kNoImpact);
    EXPECT_NE(run_trial(cfg, InjectionPattern::kBothDifferentMagnitude,
                        net::Region::kWest,
                        kpi::KpiId::kVoiceRetainability, seed++)
                  .truth,
              core::Verdict::kNoImpact);
  }
}

TEST(Synthetic, SmallSweepShapesMatchPaper) {
  SyntheticConfig cfg;
  cfg.trials_per_cell = 4;  // 5 x 4 x 4 x 4 = 320 cases; enough for ordering
  const SyntheticResults r = run_synthetic_sweep(cfg);
  EXPECT_EQ(r.trials, 320u);
  EXPECT_EQ(r.litmus.total(), 320u);
  // Headline orderings (paper Table 4).
  EXPECT_GT(r.litmus.accuracy(), r.did.accuracy());
  EXPECT_GT(r.did.accuracy(), r.study_only.accuracy());
  EXPECT_GT(r.litmus.recall(), r.did.recall() - 1e-12);
  EXPECT_LT(r.study_only.true_negative_rate(), 0.35);  // the TNR collapse
  EXPECT_FALSE(format_table3(r).empty());
  EXPECT_FALSE(format_table4(r).empty());
}

TEST(Synthetic, SweepIsDeterministic) {
  SyntheticConfig cfg;
  cfg.trials_per_cell = 2;
  const SyntheticResults a = run_synthetic_sweep(cfg);
  const SyntheticResults b = run_synthetic_sweep(cfg);
  EXPECT_EQ(a.litmus.tp, b.litmus.tp);
  EXPECT_EQ(a.study_only.fp, b.study_only.fp);
  EXPECT_EQ(a.did.fn, b.did.fn);
}

TEST(Synthetic, PatternBreakdownSumsToTotals) {
  SyntheticConfig cfg;
  cfg.trials_per_cell = 2;
  const SyntheticResults r = run_synthetic_sweep(cfg);
  std::size_t sum = 0;
  for (const auto& c : r.litmus_by_pattern) sum += c.total();
  EXPECT_EQ(sum, r.litmus.total());
}

TEST(Synthetic, ResultsIndependentOfThreadCount) {
  SyntheticConfig cfg;
  cfg.trials_per_cell = 2;
  const SyntheticResults one = run_synthetic_sweep(cfg, /*threads=*/1);
  const SyntheticResults four = run_synthetic_sweep(cfg, /*threads=*/4);
  EXPECT_EQ(one.litmus.tp, four.litmus.tp);
  EXPECT_EQ(one.litmus.fn, four.litmus.fn);
  EXPECT_EQ(one.did.fp, four.did.fp);
  EXPECT_EQ(one.study_only.tn, four.study_only.tn);
}

TEST(Synthetic, FormatsCarryHeadersAndCounts) {
  SyntheticConfig cfg;
  cfg.trials_per_cell = 1;
  const SyntheticResults r = run_synthetic_sweep(cfg);
  const std::string t4 = format_table4(r);
  EXPECT_NE(t4.find("80 cases"), std::string::npos);
  EXPECT_NE(t4.find("True negative rate"), std::string::npos);
  EXPECT_NE(t4.find("Litmus Robust"), std::string::npos);
  const std::string t3 = format_table3(r);
  EXPECT_NE(t3.find("study+control different"), std::string::npos);
  EXPECT_NE(t3.find("no impact"), std::string::npos);
}

TEST(Synthetic, FourKpisFourRegions) {
  EXPECT_EQ(synthetic_kpis().size(), 4u);
  EXPECT_EQ(synthetic_regions().size(), 4u);
}

}  // namespace
}  // namespace litmus::eval
