#include "eval/group_sim.h"

#include <gtest/gtest.h>

#include "tsmath/stats.h"

namespace litmus::eval {
namespace {

TEST(FlatGroup, StructureAndParentKind) {
  const FlatGroup g = make_flat_group(net::ElementKind::kNodeB,
                                      net::Technology::kUmts,
                                      net::Region::kNortheast, 5, 1);
  EXPECT_EQ(g.topo.size(), 6u);
  EXPECT_EQ(g.topo.get(g.parent).kind, net::ElementKind::kRnc);
  EXPECT_EQ(g.elements.size(), 5u);
  for (const auto id : g.elements) {
    EXPECT_EQ(g.topo.get(id).kind, net::ElementKind::kNodeB);
    EXPECT_EQ(g.topo.get(id).parent, g.parent);
  }
}

TEST(FlatGroup, ParentKindsPerElementKind) {
  EXPECT_EQ(make_flat_group(net::ElementKind::kRnc, net::Technology::kUmts,
                            net::Region::kWest, 2, 1)
                .topo.get(net::ElementId{1})
                .kind,
            net::ElementKind::kMsc);
  EXPECT_EQ(make_flat_group(net::ElementKind::kMsc, net::Technology::kUmts,
                            net::Region::kWest, 2, 1)
                .topo.get(net::ElementId{1})
                .kind,
            net::ElementKind::kGmsc);
  EXPECT_EQ(make_flat_group(net::ElementKind::kEnodeB, net::Technology::kLte,
                            net::Region::kWest, 2, 1)
                .topo.get(net::ElementId{1})
                .kind,
            net::ElementKind::kMme);
}

TEST(FlatGroup, OutsidersGetDifferentMarketAndRegion) {
  const FlatGroup g = make_flat_group(net::ElementKind::kNodeB,
                                      net::Technology::kUmts,
                                      net::Region::kNortheast, 6, 1,
                                      /*n_outsiders=*/2);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g.topo.get(g.elements[i]).market, 0u);
    EXPECT_EQ(g.topo.get(g.elements[i]).region, net::Region::kNortheast);
  }
  for (std::size_t i = 4; i < 6; ++i) {
    EXPECT_EQ(g.topo.get(g.elements[i]).market, 1u);
    EXPECT_NE(g.topo.get(g.elements[i]).region, net::Region::kNortheast);
  }
}

TEST(TruthOf, RelativeSemantics) {
  EpisodeSpec spec;
  spec.true_sigma = 2.0;
  EXPECT_EQ(truth_of(spec), core::Verdict::kImprovement);
  EXPECT_EQ(truth_of(spec, 2.0), core::Verdict::kNoImpact);  // both same
  EXPECT_EQ(truth_of(spec, 4.0), core::Verdict::kDegradation);
  spec.true_sigma = 0.0;
  EXPECT_EQ(truth_of(spec), core::Verdict::kNoImpact);
  EXPECT_EQ(truth_of(spec, 2.0), core::Verdict::kDegradation);
  EXPECT_EQ(truth_of(spec, -2.0), core::Verdict::kImprovement);
}

TEST(TruthOf, NoiseLevelChangesAreNoImpact) {
  EpisodeSpec spec;
  spec.true_sigma = 0.1;
  EXPECT_EQ(truth_of(spec), core::Verdict::kNoImpact);
}

TEST(Episode, WindowShapes) {
  EpisodeSpec spec;
  spec.n_study = 3;
  spec.n_control = 7;
  spec.before_bins = 100;
  spec.after_bins = 50;
  const Episode ep = simulate_episode(spec);
  ASSERT_EQ(ep.study_windows.size(), 3u);
  for (const auto& w : ep.study_windows) {
    EXPECT_EQ(w.study_before.size(), 100u);
    EXPECT_EQ(w.study_after.size(), 50u);
    EXPECT_EQ(w.study_before.end_bin(), 0);
    EXPECT_EQ(w.study_after.start_bin(), 0);
    EXPECT_EQ(w.control_before.size(), 7u);
    EXPECT_EQ(w.control_after.size(), 7u);
  }
}

TEST(Episode, StudyInjectionVisibleInStudyOnly) {
  EpisodeSpec spec;
  spec.true_sigma = 3.0;
  spec.seed = 71;
  const Episode ep = simulate_episode(spec);
  const auto& w = ep.study_windows.front();
  const double study_delta =
      ts::mean(w.study_after) - ts::mean(w.study_before);
  double ctrl_delta = 0;
  for (std::size_t c = 0; c < w.control_before.size(); ++c)
    ctrl_delta += ts::mean(w.control_after[c]) - ts::mean(w.control_before[c]);
  ctrl_delta /= static_cast<double>(w.control_before.size());
  EXPECT_GT(study_delta, ctrl_delta + 0.008);  // 3 sigma in KPI units
}

TEST(Episode, ControlInjectionHitsEveryControl) {
  EpisodeSpec spec;
  spec.seed = 72;
  const Episode with = simulate_episode(spec, /*control_injection=*/3.0);
  const Episode without = simulate_episode(spec, 0.0);
  const auto& ww = with.study_windows.front();
  const auto& wo = without.study_windows.front();
  for (std::size_t c = 0; c < ww.control_after.size(); ++c) {
    const double delta =
        ts::mean(ww.control_after[c]) - ts::mean(wo.control_after[c]);
    EXPECT_GT(delta, 0.008) << c;  // every control lifted
  }
}

TEST(Episode, ContaminationHitsOnlyTail) {
  EpisodeSpec spec;
  spec.seed = 73;
  spec.n_control = 8;
  spec.contaminated_controls = 2;
  spec.contamination_sigma = 6.0;
  spec.contamination_sign = +1;
  spec.contamination_at_change = true;
  EpisodeSpec clean = spec;
  clean.contaminated_controls = 0;
  const Episode dirty_ep = simulate_episode(spec);
  const Episode clean_ep = simulate_episode(clean);
  const auto& d = dirty_ep.study_windows.front();
  const auto& c = clean_ep.study_windows.front();
  // Outsider controls (the last two) shift; the rest differ only through
  // their market/region change (they become outsiders in the dirty run
  // too... contamination count changes outsider count, so compare deltas
  // within the dirty episode instead).
  const double tail_delta =
      ts::mean(d.control_after[7]) - ts::mean(d.control_before[7]);
  const double head_delta =
      ts::mean(d.control_after[0]) - ts::mean(d.control_before[0]);
  EXPECT_GT(tail_delta, head_delta + 0.015);
  (void)c;
}

TEST(Episode, DeterministicForSameSpec) {
  EpisodeSpec spec;
  spec.true_sigma = 1.0;
  spec.seed = 74;
  const Episode a = simulate_episode(spec);
  const Episode b = simulate_episode(spec);
  const auto& wa = a.study_windows.front();
  const auto& wb = b.study_windows.front();
  for (std::size_t i = 0; i < wa.study_before.size(); ++i)
    EXPECT_DOUBLE_EQ(wa.study_before[i], wb.study_before[i]);
}

TEST(Episode, TruthCarriedThrough) {
  EpisodeSpec spec;
  spec.true_sigma = -2.0;
  EXPECT_EQ(simulate_episode(spec).truth, core::Verdict::kDegradation);
}

}  // namespace
}  // namespace litmus::eval
