#include "eval/labeling.h"

#include <gtest/gtest.h>

#include <cmath>

namespace litmus::eval {
namespace {

using core::Verdict;

TEST(Labeling, Table1CompleteMapping) {
  // Truth improvement.
  EXPECT_EQ(label(Verdict::kImprovement, Verdict::kImprovement), Outcome::kTp);
  EXPECT_EQ(label(Verdict::kImprovement, Verdict::kDegradation), Outcome::kFn);
  EXPECT_EQ(label(Verdict::kImprovement, Verdict::kNoImpact), Outcome::kFn);
  // Truth degradation.
  EXPECT_EQ(label(Verdict::kDegradation, Verdict::kDegradation), Outcome::kTp);
  EXPECT_EQ(label(Verdict::kDegradation, Verdict::kImprovement), Outcome::kFn);
  EXPECT_EQ(label(Verdict::kDegradation, Verdict::kNoImpact), Outcome::kFn);
  // Truth no impact.
  EXPECT_EQ(label(Verdict::kNoImpact, Verdict::kImprovement), Outcome::kFp);
  EXPECT_EQ(label(Verdict::kNoImpact, Verdict::kDegradation), Outcome::kFp);
  EXPECT_EQ(label(Verdict::kNoImpact, Verdict::kNoImpact), Outcome::kTn);
}

TEST(Confusion, AddAndTotal) {
  ConfusionCounts c;
  c.add(Outcome::kTp);
  c.add(Outcome::kTp);
  c.add(Outcome::kTn);
  c.add(Outcome::kFp);
  c.add(Outcome::kFn);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.total(), 5u);
}

TEST(Confusion, MetricsMatchPaperFormulas) {
  ConfusionCounts c;
  c.tp = 234;
  c.tn = 79;
  c.fp = 0;
  c.fn = 0;
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.true_negative_rate(), 1.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);

  // The paper's DiD column: 186 TP, 79 TN, 0 FP, 48 FN.
  ConfusionCounts did;
  did.tp = 186;
  did.tn = 79;
  did.fp = 0;
  did.fn = 48;
  EXPECT_NEAR(did.precision(), 1.0, 1e-12);
  EXPECT_NEAR(did.recall(), 0.7949, 5e-4);
  EXPECT_NEAR(did.accuracy(), 0.8466, 5e-4);
}

TEST(Confusion, ZeroDenominatorsAreNan) {
  const ConfusionCounts c;
  EXPECT_TRUE(std::isnan(c.precision()));
  EXPECT_TRUE(std::isnan(c.recall()));
  EXPECT_TRUE(std::isnan(c.true_negative_rate()));
  EXPECT_TRUE(std::isnan(c.accuracy()));
}

TEST(Confusion, Accumulate) {
  ConfusionCounts a, b;
  a.tp = 1;
  a.fn = 2;
  b.tp = 3;
  b.fp = 4;
  a += b;
  EXPECT_EQ(a.tp, 4u);
  EXPECT_EQ(a.fn, 2u);
  EXPECT_EQ(a.fp, 4u);
}

TEST(Labeling, OutcomeNames) {
  EXPECT_STREQ(to_string(Outcome::kTp), "TP");
  EXPECT_STREQ(to_string(Outcome::kFn), "FN");
}

}  // namespace
}  // namespace litmus::eval
