#include "tsmath/rank_tests.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tsmath/random.h"

namespace litmus::ts {
namespace {

std::vector<double> draw(Rng& rng, std::size_t n, double mu, double sigma) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(mu, sigma);
  return v;
}

TEST(Wilcoxon, DetectsClearShift) {
  Rng rng(1);
  const auto x = draw(rng, 100, 1.0, 1.0);
  const auto y = draw(rng, 100, 0.0, 1.0);
  const TestResult t = wilcoxon_mann_whitney(x, y);
  EXPECT_EQ(t.shift, Shift::kIncrease);
  EXPECT_LT(t.p_value, 0.001);
  EXPECT_GT(t.statistic, 3.0);
}

TEST(Wilcoxon, SymmetricInDirection) {
  Rng rng(2);
  const auto x = draw(rng, 80, -1.0, 1.0);
  const auto y = draw(rng, 80, 0.0, 1.0);
  EXPECT_EQ(wilcoxon_mann_whitney(x, y).shift, Shift::kDecrease);
}

TEST(Wilcoxon, NullIsMostlyInsignificant) {
  Rng rng(3);
  int rejections = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = draw(rng, 50, 0.0, 1.0);
    const auto y = draw(rng, 50, 0.0, 1.0);
    if (wilcoxon_mann_whitney(x, y).significant()) ++rejections;
  }
  // alpha = 0.05; allow generous slack.
  EXPECT_LE(rejections, 24);
}

TEST(Wilcoxon, HandlesHeavyTies) {
  const std::vector<double> x{1, 1, 1, 2, 2, 2, 2, 2};
  const std::vector<double> y{1, 1, 1, 1, 1, 2, 2, 2};
  const TestResult t = wilcoxon_mann_whitney(x, y);
  EXPECT_FALSE(std::isnan(t.p_value));
}

TEST(Wilcoxon, AllIdenticalIsNoShift) {
  const std::vector<double> x{5, 5, 5, 5};
  const std::vector<double> y{5, 5, 5, 5};
  const TestResult t = wilcoxon_mann_whitney(x, y);
  EXPECT_EQ(t.shift, Shift::kNone);
  EXPECT_DOUBLE_EQ(t.p_value, 1.0);
}

TEST(Wilcoxon, TooFewSamplesIsDegenerate) {
  const TestResult t = wilcoxon_mann_whitney(std::vector<double>{1.0},
                                             std::vector<double>{2.0, 3.0});
  EXPECT_EQ(t.shift, Shift::kNone);
  EXPECT_TRUE(std::isnan(t.p_value));
}

TEST(RobustRankOrder, DetectsClearShift) {
  Rng rng(4);
  const auto x = draw(rng, 100, 0.8, 1.0);
  const auto y = draw(rng, 100, 0.0, 1.0);
  const TestResult t = robust_rank_order(x, y);
  EXPECT_EQ(t.shift, Shift::kIncrease);
  EXPECT_LT(t.p_value, 0.01);
}

TEST(RobustRankOrder, DirectionSign) {
  Rng rng(5);
  const auto lo = draw(rng, 60, -0.8, 1.0);
  const auto hi = draw(rng, 60, 0.8, 1.0);
  EXPECT_EQ(robust_rank_order(lo, hi).shift, Shift::kDecrease);
  EXPECT_EQ(robust_rank_order(hi, lo).shift, Shift::kIncrease);
}

TEST(RobustRankOrder, NullCalibration) {
  Rng rng(6);
  int rejections = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = draw(rng, 60, 0.0, 1.0);
    const auto y = draw(rng, 60, 0.0, 1.0);
    if (robust_rank_order(x, y).significant()) ++rejections;
  }
  EXPECT_LE(rejections, 26);
}

TEST(RobustRankOrder, ToleratesUnequalVariances) {
  // Under H0 with very different dispersions, the FP test stays calibrated
  // (its selling point vs WMW, Fligner & Policello 1981).
  Rng rng(7);
  int rejections = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = draw(rng, 60, 0.0, 0.3);
    const auto y = draw(rng, 60, 0.0, 3.0);
    if (robust_rank_order(x, y).significant()) ++rejections;
  }
  EXPECT_LE(rejections, 30);
}

TEST(RobustRankOrder, RobustToOneOffOutliers) {
  // A single extreme spike does not create a spurious shift.
  Rng rng(8);
  auto x = draw(rng, 80, 0.0, 1.0);
  const auto y = draw(rng, 80, 0.0, 1.0);
  x[0] = 1e6;
  const TestResult t = robust_rank_order(x, y);
  EXPECT_EQ(t.shift, Shift::kNone);
}

TEST(RobustRankOrder, FullSeparationIsDecisive) {
  const std::vector<double> x{10, 11, 12, 13};
  const std::vector<double> y{1, 2, 3, 4};
  const TestResult t = robust_rank_order(x, y);
  EXPECT_EQ(t.shift, Shift::kIncrease);
  EXPECT_DOUBLE_EQ(t.p_value, 0.0);
}

TEST(RobustRankOrder, SmallSampleRequiresSeparation) {
  // Overlapping tiny samples: conservative no-shift even if suggestive.
  const std::vector<double> x{3.0, 4.0, 5.0};
  const std::vector<double> y{1.0, 2.0, 3.5};
  EXPECT_EQ(robust_rank_order(x, y).shift, Shift::kNone);
}

TEST(RobustRankOrder, IdenticalConstantSamples) {
  const std::vector<double> x{2, 2, 2};
  const std::vector<double> y{2, 2, 2};
  const TestResult t = robust_rank_order(x, y);
  EXPECT_EQ(t.shift, Shift::kNone);
  EXPECT_DOUBLE_EQ(t.p_value, 1.0);
}

TEST(RobustRankOrder, SkipsMissingValues) {
  Rng rng(9);
  auto x = draw(rng, 50, 1.5, 1.0);
  auto y = draw(rng, 50, 0.0, 1.0);
  x.insert(x.begin(), kMissing);
  y.push_back(kMissing);
  const TestResult t = robust_rank_order(x, y);
  EXPECT_EQ(t.n_x, 50u);
  EXPECT_EQ(t.n_y, 50u);
  EXPECT_EQ(t.shift, Shift::kIncrease);
}

TEST(RobustRankOrder, TimeSeriesOverload) {
  Rng rng(10);
  TimeSeries a(0, draw(rng, 60, 1.0, 1.0));
  TimeSeries b(0, draw(rng, 60, 0.0, 1.0));
  EXPECT_EQ(robust_rank_order(a, b).shift, Shift::kIncrease);
}

TEST(RankTests, ShiftToString) {
  EXPECT_STREQ(to_string(Shift::kNone), "none");
  EXPECT_STREQ(to_string(Shift::kIncrease), "increase");
  EXPECT_STREQ(to_string(Shift::kDecrease), "decrease");
}

// Power property: detection probability grows with the shift.
class PowerProperty : public ::testing::TestWithParam<double> {};

TEST_P(PowerProperty, DetectsShiftsAboveHalfSigma) {
  const double shift = GetParam();
  Rng rng(static_cast<std::uint64_t>(shift * 1000) + 17);
  int detected = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = draw(rng, 100, shift, 1.0);
    const auto y = draw(rng, 100, 0.0, 1.0);
    const TestResult t = robust_rank_order(x, y);
    if (t.shift == Shift::kIncrease) ++detected;
  }
  EXPECT_GE(detected, 45) << "shift=" << shift;
}

INSTANTIATE_TEST_SUITE_P(Shifts, PowerProperty,
                         ::testing::Values(0.6, 0.8, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace litmus::ts
