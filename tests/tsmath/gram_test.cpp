#include "tsmath/gram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tsmath/linreg.h"
#include "tsmath/matrix.h"
#include "tsmath/random.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

Matrix random_design(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r)
      m(r, c) = rng.normal(0.0, 1.0) + static_cast<double>(c);
  return m;
}

std::vector<double> make_response(const Matrix& x, std::uint64_t seed) {
  Rng rng(seed ^ 0xBEEF);
  std::vector<double> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double v = 0.7;
    for (std::size_t c = 0; c < x.cols(); ++c)
      v += (0.3 + 0.1 * static_cast<double>(c)) * x(r, c);
    y[r] = v + rng.normal(0.0, 0.05);
  }
  return y;
}

TEST(GramPanel, MatchesQrOnCompletePanel) {
  const Matrix x = random_design(120, 8, 42);
  const std::vector<double> y = make_response(x, 42);
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  EXPECT_EQ(panel.panel_rows(), 120u);
  EXPECT_EQ(panel.design_rows(), 120u);
  EXPECT_EQ(panel.cols(), 8u);
  EXPECT_GT(panel.bytes(), 0u);
  GramSystem gram;
  ASSERT_TRUE(gram.bind(panel, y, /*with_intercept=*/true));
  EXPECT_EQ(gram.rows(), 120u);

  GramScratch scratch;
  const std::vector<std::vector<std::size_t>> subsets = {
      {0, 1, 2, 3, 4, 5, 6, 7}, {0, 3, 7}, {2}, {1, 4, 5, 6}};
  for (const auto& cols : subsets) {
    ASSERT_TRUE(gram.subset_matches_panel(cols));
    LinearModel fast;
    ASSERT_TRUE(gram.solve_subset(cols, scratch, fast));
    const LinearModel slow = fit_ols(x.select_columns(cols), y);
    ASSERT_TRUE(slow.ok);
    ASSERT_EQ(fast.coefficients.size(), slow.coefficients.size());
    EXPECT_NEAR(fast.intercept, slow.intercept, 1e-9);
    for (std::size_t i = 0; i < cols.size(); ++i)
      EXPECT_NEAR(fast.coefficients[i], slow.coefficients[i], 1e-9);
    EXPECT_NEAR(fast.r_squared, slow.r_squared, 1e-9);
    EXPECT_NEAR(fast.residual_stddev, slow.residual_stddev, 1e-9);
    EXPECT_GT(fast.condition, 0.0);
  }
}

TEST(GramPanel, MatchesQrWithoutIntercept) {
  const Matrix x = random_design(80, 5, 7);
  const std::vector<double> y = make_response(x, 7);
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  GramSystem gram;
  ASSERT_TRUE(gram.bind(panel, y, /*with_intercept=*/false));

  GramScratch scratch;
  const std::vector<std::size_t> cols = {0, 2, 4};
  LinearModel fast;
  ASSERT_TRUE(gram.solve_subset(cols, scratch, fast));
  EXPECT_FALSE(fast.with_intercept);
  EXPECT_EQ(fast.intercept, 0.0);
  const LinearModel slow =
      fit_ols(x.select_columns(cols), y, /*with_intercept=*/false);
  ASSERT_TRUE(slow.ok);
  for (std::size_t i = 0; i < cols.size(); ++i)
    EXPECT_NEAR(fast.coefficients[i], slow.coefficients[i], 1e-9);
  EXPECT_NEAR(fast.residual_stddev, slow.residual_stddev, 1e-9);
}

TEST(GramPanel, SubsetMatchingTracksPerColumnMissingness) {
  Matrix x = random_design(64, 4, 3);
  std::vector<double> y = make_response(x, 3);
  // Column 2 is missing at rows the others have, so any subset including
  // column 2 sees the panel row set, while subsets excluding it have MORE
  // complete rows than the panel — the fast path must refuse those.
  x(10, 2) = kMissing;
  x(33, 2) = kMissing;
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  EXPECT_EQ(panel.panel_rows(), 62u);
  GramSystem gram;
  ASSERT_TRUE(gram.bind(panel, y, true));

  const std::vector<std::size_t> with2 = {0, 2, 3};
  const std::vector<std::size_t> without2 = {0, 1, 3};
  EXPECT_TRUE(gram.subset_matches_panel(with2));
  EXPECT_FALSE(gram.subset_matches_panel(without2));

  // The matching subset still agrees with QR to 1e-9: fit_ols drops the
  // same two rows.
  GramScratch scratch;
  LinearModel fast;
  ASSERT_TRUE(gram.solve_subset(with2, scratch, fast));
  const LinearModel slow = fit_ols(x.select_columns(with2), y);
  ASSERT_TRUE(slow.ok);
  for (std::size_t i = 0; i < with2.size(); ++i)
    EXPECT_NEAR(fast.coefficients[i], slow.coefficients[i], 1e-9);
}

TEST(GramPanel, MissingResponseRowsReduceTheBoundSystem) {
  Matrix x = random_design(50, 3, 11);
  std::vector<double> y = make_response(x, 11);
  y[5] = kMissing;
  y[49] = kMissing;
  // The design-only panel keeps all 50 rows (y is not its business)...
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  EXPECT_EQ(panel.panel_rows(), 50u);
  // ...and the bound system drops the two y-missing rows, re-accumulating
  // a reduced Gram so subsets still reproduce QR exactly.
  GramSystem gram;
  ASSERT_TRUE(gram.bind(panel, y, true));
  EXPECT_EQ(gram.rows(), 48u);
  const std::vector<std::size_t> cols = {0, 1, 2};
  EXPECT_TRUE(gram.subset_matches_panel(cols));
  GramScratch scratch;
  LinearModel fast;
  ASSERT_TRUE(gram.solve_subset(cols, scratch, fast));
  const LinearModel slow = fit_ols(x, y);
  ASSERT_TRUE(slow.ok);
  for (std::size_t i = 0; i < cols.size(); ++i)
    EXPECT_NEAR(fast.coefficients[i], slow.coefficients[i], 1e-9);
}

TEST(GramPanel, OnePanelServesManyResponses) {
  // The sharing shape the panel cache exploits: bind E responses to one
  // design-only panel and check each against its own QR fit.
  const Matrix x = random_design(90, 6, 21);
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  GramScratch scratch;
  const std::vector<std::size_t> cols = {0, 1, 3, 5};
  for (std::uint64_t e = 0; e < 4; ++e) {
    const std::vector<double> y = make_response(x, 100 + e);
    GramSystem gram;
    ASSERT_TRUE(gram.bind(panel, y, true));
    ASSERT_TRUE(gram.subset_matches_panel(cols));
    LinearModel fast;
    ASSERT_TRUE(gram.solve_subset(cols, scratch, fast));
    const LinearModel slow = fit_ols(x.select_columns(cols), y);
    ASSERT_TRUE(slow.ok);
    EXPECT_NEAR(fast.intercept, slow.intercept, 1e-9);
    for (std::size_t i = 0; i < cols.size(); ++i)
      EXPECT_NEAR(fast.coefficients[i], slow.coefficients[i], 1e-9);
  }
}

TEST(GramPanel, RefusesSingularSubsets) {
  // Two identical columns: the sub-Gram is exactly singular, so the
  // Cholesky pivot check must bail out instead of returning garbage.
  Matrix x(40, 2);
  Rng rng(5);
  for (std::size_t r = 0; r < 40; ++r) {
    const double v = rng.normal();
    x(r, 0) = v;
    x(r, 1) = v;
  }
  std::vector<double> y(40);
  for (std::size_t r = 0; r < 40; ++r) y[r] = 2.0 * x(r, 0) + rng.normal();
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  GramSystem gram;
  ASSERT_TRUE(gram.bind(panel, y, true));
  GramScratch scratch;
  LinearModel out;
  const std::vector<std::size_t> both = {0, 1};
  EXPECT_FALSE(gram.solve_subset(both, scratch, out));
  EXPECT_FALSE(out.ok);
  // A single copy of the column is fine.
  const std::vector<std::size_t> one = {0};
  EXPECT_TRUE(gram.solve_subset(one, scratch, out));
  EXPECT_TRUE(out.ok);
  EXPECT_NEAR(out.coefficients[0], 2.0, 0.5);
}

TEST(GramPanel, NotOkWhenTooFewCompleteRows) {
  Matrix x(6, 2);
  for (std::size_t r = 0; r < 6; ++r) {
    x(r, 0) = static_cast<double>(r);
    x(r, 1) = r < 3 ? kMissing : 1.0;
  }
  const GramPanel panel = GramPanel::build(x);
  EXPECT_FALSE(panel.ok());
  // Binding to a bad panel fails too.
  GramSystem gram;
  EXPECT_FALSE(gram.bind(panel, std::vector<double>(6, 1.0), true));
  EXPECT_FALSE(gram.ok());
}

TEST(GramPanel, BindFailsWhenYLeavesTooFewJointRows) {
  Matrix x = random_design(8, 2, 13);
  std::vector<double> y(8, 1.0);
  for (std::size_t r = 0; r < 6; ++r) y[r] = kMissing;
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  GramSystem gram;
  EXPECT_FALSE(gram.bind(panel, y, true));
  EXPECT_FALSE(gram.ok());
}

TEST(GramPanel, BindRejectsSizeMismatch) {
  const Matrix x = random_design(20, 2, 17);
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  GramSystem gram;
  EXPECT_FALSE(gram.bind(panel, std::vector<double>(19, 1.0), true));
}

TEST(GramPanel, SolveRejectsOversizedSubsets) {
  const Matrix x = random_design(8, 6, 9);
  const std::vector<double> y = make_response(x, 9);
  const GramPanel panel = GramPanel::build(x);
  ASSERT_TRUE(panel.ok());
  GramSystem gram;
  ASSERT_TRUE(gram.bind(panel, y, true));
  // 8 rows cannot support 6 coefficients + intercept with 1 dof to spare.
  GramScratch scratch;
  LinearModel out;
  const std::vector<std::size_t> cols = {0, 1, 2, 3, 4, 5};
  EXPECT_FALSE(gram.solve_subset(cols, scratch, out));
}

}  // namespace
}  // namespace litmus::ts
