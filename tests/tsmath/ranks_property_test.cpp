// Property test for the ranking kernels: midranks/placements/
// tie_correction_sum are compared against brute-force O(n²)/O(m·n)
// reference implementations over randomized inputs with heavy ties and
// missing values. The production kernels are sort-based (O(n log n)); the
// references below follow the definitions literally, so agreement across
// many random draws pins the optimized code to the definitions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tsmath/ranks.h"
#include "tsmath/random.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

// Draws a vector whose values cluster on a small grid (many exact ties)
// with a sprinkling of missing entries.
std::vector<double> rough_sample(Rng& rng, std::size_t n, double missing_p) {
  std::vector<double> out(n);
  for (auto& v : out) {
    if (rng.uniform(0.0, 1.0) < missing_p) {
      v = kMissing;
      continue;
    }
    // Grid step 0.5 over [-3, 3] => ~13 distinct values, dense ties.
    v = std::round(rng.normal() * 2.0) / 2.0;
  }
  return out;
}

// Literal definition: rank of x_i among the observed values (1-based),
// ties averaged; missing stays missing.
std::vector<double> brute_midranks(const std::vector<double>& xs) {
  std::vector<double> out(xs.size(), kMissing);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) continue;
    double below = 0, equal = 0;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (is_missing(xs[j])) continue;
      if (xs[j] < xs[i]) ++below;
      if (xs[j] == xs[i]) ++equal;  // includes j == i
    }
    out[i] = below + (equal + 1.0) / 2.0;
  }
  return out;
}

// Literal definition: out[i] = #{ys < x_i} + 0.5 #{ys == x_i}.
std::vector<double> brute_placements(const std::vector<double>& xs,
                                     const std::vector<double>& ys) {
  std::vector<double> out(xs.size(), kMissing);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) continue;
    double below = 0, equal = 0;
    for (const double y : ys) {
      if (is_missing(y)) continue;
      if (y < xs[i]) ++below;
      if (y == xs[i]) ++equal;
    }
    out[i] = below + 0.5 * equal;
  }
  return out;
}

// Literal definition: Σ (t³ - t) over groups of equal observed values.
double brute_tie_correction(const std::vector<double>& xs) {
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) continue;
    // Count the group only at its first occurrence.
    bool first = true;
    for (std::size_t j = 0; j < i; ++j)
      if (!is_missing(xs[j]) && xs[j] == xs[i]) first = false;
    if (!first) continue;
    double t = 0;
    for (const double x : xs)
      if (!is_missing(x) && x == xs[i]) ++t;
    sum += t * t * t - t;
  }
  return sum;
}

void expect_same(const std::vector<double>& got,
                 const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (is_missing(want[i])) {
      EXPECT_TRUE(is_missing(got[i])) << "index " << i;
    } else {
      EXPECT_DOUBLE_EQ(got[i], want[i]) << "index " << i;
    }
  }
}

TEST(RanksProperty, MidranksMatchBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 80);
    const double missing_p = trial % 3 == 0 ? 0.2 : 0.0;
    const auto xs = rough_sample(rng, n, missing_p);
    expect_same(midranks(xs), brute_midranks(xs));
  }
}

TEST(RanksProperty, PlacementsMatchBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 60);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 60);
    const double missing_p = trial % 4 == 0 ? 0.25 : 0.0;
    const auto xs = rough_sample(rng, m, missing_p);
    const auto ys = rough_sample(rng, n, missing_p);
    expect_same(placements(xs, ys), brute_placements(xs, ys));
    expect_same(placements(ys, xs), brute_placements(ys, xs));
  }
}

// Both placement implementations — the SIMD compare-and-count kernel and
// the sort+binary-search path — must agree with the oracle AND with each
// other exactly, whatever the auto-selection would pick: the size-based
// crossover may only ever move time, never a bit of output.
TEST(RanksProperty, PlacementPathsAgreeExactly) {
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 70);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 70);
    const double missing_p = trial % 3 == 0 ? 0.3 : 0.0;
    const auto xs = rough_sample(rng, m, missing_p);
    const auto ys = rough_sample(rng, n, missing_p);
    const auto want = brute_placements(xs, ys);

    std::vector<double> counted(m), sorted(m);
    placements_counting_into(xs, ys, counted);
    placements_sorted_into(xs, ys, sorted);
    expect_same(counted, want);
    expect_same(sorted, want);
    for (std::size_t i = 0; i < m; ++i) {
      if (is_missing(want[i])) continue;
      // Bit-equality, not tolerance: both paths compute exact integer
      // counts plus an exact half.
      EXPECT_EQ(counted[i], sorted[i]) << "index " << i;
    }

    // The fused pair call must match two independent calls.
    std::vector<double> u_x(m), u_y(n);
    placement_pair_into(xs, ys, u_x, u_y);
    expect_same(u_x, want);
    expect_same(u_y, brute_placements(ys, xs));
  }
}

// midranks_into's fused tie accumulator must match the standalone
// tie_correction_sum (which re-sorts) exactly.
TEST(RanksProperty, FusedTieCorrectionMatchesStandalone) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 90);
    const double missing_p = trial % 2 == 0 ? 0.2 : 0.0;
    const auto xs = rough_sample(rng, n, missing_p);
    std::vector<double> ranks(xs.size());
    double fused = -1.0;
    midranks_into(xs, ranks, &fused);
    EXPECT_DOUBLE_EQ(fused, tie_correction_sum(xs));
    EXPECT_DOUBLE_EQ(fused, brute_tie_correction(xs));
    expect_same(ranks, brute_midranks(xs));
  }
}

TEST(RanksProperty, TieCorrectionMatchesBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) * 100);
    const double missing_p = trial % 3 == 1 ? 0.3 : 0.0;
    const auto xs = rough_sample(rng, n, missing_p);
    EXPECT_DOUBLE_EQ(tie_correction_sum(xs), brute_tie_correction(xs));
  }
}

TEST(RanksProperty, EdgeCases) {
  // All-missing, all-equal, single element.
  const std::vector<double> all_missing(5, kMissing);
  expect_same(midranks(all_missing), brute_midranks(all_missing));
  EXPECT_DOUBLE_EQ(tie_correction_sum(all_missing), 0.0);

  const std::vector<double> all_equal(7, 1.25);
  expect_same(midranks(all_equal), brute_midranks(all_equal));
  EXPECT_DOUBLE_EQ(tie_correction_sum(all_equal),
                   brute_tie_correction(all_equal));

  const std::vector<double> one = {3.0};
  expect_same(midranks(one), brute_midranks(one));
  expect_same(placements(one, all_equal), brute_placements(one, all_equal));
}

}  // namespace
}  // namespace litmus::ts
