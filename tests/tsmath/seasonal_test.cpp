#include "tsmath/seasonal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "tsmath/random.h"
#include "tsmath/stats.h"

namespace litmus::ts {
namespace {

std::vector<double> seasonal_signal(std::size_t n, std::size_t period,
                                    double amplitude, double trend,
                                    double noise_sigma, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = amplitude * std::sin(2.0 * std::numbers::pi *
                                static_cast<double>(i % period) / period) +
           trend * static_cast<double>(i) + rng.normal(0.0, noise_sigma);
  return v;
}

TEST(MovingAverage, SmoothsConstant) {
  const std::vector<double> v(20, 3.0);
  const std::vector<double> m = moving_average(v, 5);
  EXPECT_TRUE(is_missing(m[0]));
  EXPECT_TRUE(is_missing(m[1]));
  for (std::size_t i = 2; i + 2 < v.size(); ++i)
    EXPECT_DOUBLE_EQ(m[i], 3.0);
}

TEST(MovingAverage, EvenWindowRejected) {
  const std::vector<double> v(10, 1.0);
  const std::vector<double> m = moving_average(v, 4);
  for (double x : m) EXPECT_TRUE(is_missing(x));
}

TEST(MovingAverage, ToleratesSomeMissing) {
  std::vector<double> v(11, 2.0);
  v[5] = kMissing;
  const std::vector<double> m = moving_average(v, 5);
  EXPECT_DOUBLE_EQ(m[5], 2.0);  // 4 of 5 observed is enough
}

TEST(SeasonalMeans, RecoversPhasePattern) {
  std::vector<double> v;
  for (int rep = 0; rep < 10; ++rep)
    for (double phase : {1.0, 2.0, 3.0}) v.push_back(phase);
  const std::vector<double> means = seasonal_means(v, 3);
  EXPECT_DOUBLE_EQ(means[0], 1.0);
  EXPECT_DOUBLE_EQ(means[1], 2.0);
  EXPECT_DOUBLE_EQ(means[2], 3.0);
}

TEST(SeasonalMeans, MissingPhaseIsMissing) {
  const std::vector<double> v{1.0, kMissing, 1.0, kMissing};
  const std::vector<double> means = seasonal_means(v, 2);
  EXPECT_DOUBLE_EQ(means[0], 1.0);
  EXPECT_TRUE(is_missing(means[1]));
}

TEST(Decompose, ReconstructsSignal) {
  const std::vector<double> v =
      seasonal_signal(240, 24, 2.0, 0.01, 0.0, 31);
  const Decomposition d = decompose_additive(v, 24);
  for (std::size_t i = 30; i < 210; ++i) {
    if (is_missing(d.trend[i])) continue;
    EXPECT_NEAR(d.trend[i] + d.seasonal[i] + d.remainder[i], v[i], 1e-9);
  }
}

TEST(Decompose, SeasonalComponentSumsToZero) {
  const std::vector<double> v =
      seasonal_signal(240, 24, 2.0, 0.0, 0.3, 32);
  const Decomposition d = decompose_additive(v, 24);
  double sum = 0;
  for (std::size_t p = 0; p < 24; ++p) sum += d.seasonal[p];
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(SeasonalStrength, HighForPeriodicSignal) {
  const std::vector<double> v =
      seasonal_signal(480, 24, 3.0, 0.0, 0.3, 33);
  EXPECT_GT(seasonal_strength(v, 24), 0.9);
}

TEST(SeasonalStrength, LowForWhiteNoise) {
  Rng rng(34);
  std::vector<double> v(480);
  for (auto& x : v) x = rng.normal();
  EXPECT_LT(seasonal_strength(v, 24), 0.25);
}

TEST(TrendSlope, RecoversLinearTrend) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 5.0 + 0.25 * static_cast<double>(i);
  EXPECT_NEAR(linear_trend_slope(v), 0.25, 1e-12);
}

TEST(TrendSlope, MissingAware) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 2.0 * static_cast<double>(i);
  v[10] = kMissing;
  v[50] = kMissing;
  EXPECT_NEAR(linear_trend_slope(v), 2.0, 1e-9);
}

TEST(TrendSlope, DegenerateInputs) {
  EXPECT_TRUE(is_missing(linear_trend_slope(std::vector<double>{1.0})));
  EXPECT_TRUE(is_missing(linear_trend_slope(std::vector<double>{})));
}


TEST(TheilSen, RecoversSlopeExactly) {
  std::vector<double> v(50);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 1.0 + 0.5 * static_cast<double>(i);
  EXPECT_NEAR(theil_sen_slope(v), 0.5, 1e-12);
}

TEST(TheilSen, RobustToGrossOutliers) {
  Rng rng(41);
  std::vector<double> v(60);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 2.0 * static_cast<double>(i) + rng.normal(0.0, 0.1);
  // 10 wild outliers wreck OLS but not Theil-Sen.
  for (std::size_t i = 0; i < 10; ++i) v[i * 6] = 1e5;
  EXPECT_NEAR(theil_sen_slope(v), 2.0, 0.2);
  EXPECT_GT(std::fabs(linear_trend_slope(v) - 2.0), 10.0);
}

TEST(TheilSen, MissingAwareAndDegenerate) {
  std::vector<double> v{0.0, kMissing, 2.0, kMissing, 4.0};
  EXPECT_NEAR(theil_sen_slope(v), 1.0, 1e-12);
  EXPECT_TRUE(is_missing(theil_sen_slope(std::vector<double>{1.0})));
}

}  // namespace
}  // namespace litmus::ts
