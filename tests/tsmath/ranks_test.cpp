#include "tsmath/ranks.h"

#include <gtest/gtest.h>

#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

TEST(Midranks, SimpleOrdering) {
  const std::vector<double> r = midranks(std::vector<double>{30, 10, 20});
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Midranks, TiesGetAverageRank) {
  // {1, 2, 2, 3}: the two 2s span ranks 2 and 3 -> 2.5 each.
  const std::vector<double> r = midranks(std::vector<double>{1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Midranks, AllEqual) {
  const std::vector<double> r = midranks(std::vector<double>{7, 7, 7});
  for (double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Midranks, MissingGetsNanAndConsumesNoRank) {
  const std::vector<double> r =
      midranks(std::vector<double>{5.0, kMissing, 1.0});
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_TRUE(is_missing(r[1]));
  EXPECT_DOUBLE_EQ(r[2], 1.0);
}

TEST(Midranks, RankSumInvariant) {
  // Sum of ranks of n observed values is always n(n+1)/2.
  const std::vector<double> v{3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  const std::vector<double> r = midranks(v);
  double sum = 0;
  for (double x : r) sum += x;
  EXPECT_DOUBLE_EQ(sum, 10.0 * 11.0 / 2.0);
}

TEST(Placements, CountsBelow) {
  // placements(x, y): # of y strictly below each x (ties count 1/2).
  const std::vector<double> x{5.0, 0.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  const std::vector<double> p = placements(x, y);
  EXPECT_DOUBLE_EQ(p[0], 3.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(Placements, TiesCountHalf) {
  const std::vector<double> x{2.0};
  const std::vector<double> y{1.0, 2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(placements(x, y)[0], 1.0 + 0.5 * 2.0);
}

TEST(Placements, MissingHandling) {
  const std::vector<double> x{kMissing, 2.0};
  const std::vector<double> y{1.0, kMissing};
  const std::vector<double> p = placements(x, y);
  EXPECT_TRUE(is_missing(p[0]));
  EXPECT_DOUBLE_EQ(p[1], 1.0);  // only the observed y counts
}

TEST(Placements, SymmetryInvariant) {
  // sum placements(x,y) + sum placements(y,x) == m*n when no value is
  // missing (each cross pair contributes exactly 1).
  const std::vector<double> x{1, 4, 4, 7};
  const std::vector<double> y{2, 4, 6};
  double total = 0;
  for (double v : placements(x, y)) total += v;
  for (double v : placements(y, x)) total += v;
  EXPECT_DOUBLE_EQ(total, 12.0);
}

TEST(TieCorrection, NoTiesIsZero) {
  EXPECT_DOUBLE_EQ(tie_correction_sum(std::vector<double>{1, 2, 3}), 0.0);
}

TEST(TieCorrection, CountsCubesMinusCounts) {
  // group of 3 ties: 27-3 = 24; group of 2: 8-2 = 6.
  EXPECT_DOUBLE_EQ(
      tie_correction_sum(std::vector<double>{1, 1, 1, 2, 2, 3}), 30.0);
}

}  // namespace
}  // namespace litmus::ts
