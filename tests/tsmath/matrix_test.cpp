#include "tsmath/matrix.h"

#include <gtest/gtest.h>

#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, ColumnSpanIsContiguous) {
  Matrix m(3, 2);
  m(0, 1) = 1.0;
  m(1, 1) = 2.0;
  m(2, 1) = 3.0;
  const auto col = m.column(1);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[0], 1.0);
  EXPECT_DOUBLE_EQ(col[2], 3.0);
}

TEST(Matrix, SetColumn) {
  Matrix m(3, 2);
  const std::vector<double> v{4.0, 5.0, 6.0};
  m.set_column(0, v);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 6.0);
}

TEST(Matrix, SetColumnSizeMismatchThrows) {
  Matrix m(3, 1);
  EXPECT_THROW(m.set_column(0, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Matrix, SelectColumnsReorders) {
  Matrix m(2, 3);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t r = 0; r < 2; ++r) m(r, c) = static_cast<double>(c);
  const std::vector<std::size_t> cols{2, 0};
  Matrix sub = m.select_columns(cols);
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_DOUBLE_EQ(sub(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub(0, 1), 0.0);
}

TEST(Matrix, SelectColumnsOutOfRangeThrows) {
  Matrix m(2, 2);
  const std::vector<std::size_t> cols{5};
  EXPECT_THROW(m.select_columns(cols), std::out_of_range);
}

TEST(Matrix, Multiply) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, TransposeMultiply) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const std::vector<double> y{1.0, 1.0};
  const std::vector<double> x = m.transpose_multiply(y);
  EXPECT_DOUBLE_EQ(x[0], 4.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(Matrix, MultiplySizeMismatchThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.multiply(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(m.transpose_multiply(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Matrix, HasMissing) {
  Matrix m(2, 2, 0.0);
  EXPECT_FALSE(m.has_missing());
  m(1, 1) = kMissing;
  EXPECT_TRUE(m.has_missing());
}

}  // namespace
}  // namespace litmus::ts
