// Bit-identity property tests for the dispatched SIMD kernels: every tier
// that compiled AND runs on this host must reproduce the scalar tier's
// results exactly — same bits, not "close" — across odd sizes, unaligned
// tails, all-missing columns, and tie-heavy inputs. The fast-math kernels
// are exempt from bit-identity and instead pinned to a relative tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tsmath/random.h"
#include "tsmath/simd/dispatch.h"
#include "tsmath/simd/kernels.h"
#include "tsmath/timeseries.h"

namespace litmus::ts::simd {
namespace {

std::vector<const KernelTable*> testable_tiers() {
  std::vector<const KernelTable*> out;
  const KernelTable* tables[] = {table_sse2(), table_avx2(), table_avx512(),
                                 table_neon()};
  const Tier tiers[] = {Tier::kSse2, Tier::kAvx2, Tier::kAvx512,
                        Tier::kNeon};
  for (int i = 0; i < 4; ++i) {
    if (tables[i] != nullptr && tier_supported(tiers[i]))
      out.push_back(tables[i]);
  }
  return out;
}

// Sizes that exercise every tail residue mod 8 plus multi-block bodies.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,
                              15, 16, 17, 23, 31, 32, 33, 63, 64, 65,
                              100, 127, 128, 129, 255, 1000};

std::vector<double> draw(Rng& rng, std::size_t n, double missing_p,
                         bool ties) {
  std::vector<double> out(n);
  for (auto& v : out) {
    if (missing_p > 0.0 && rng.uniform(0.0, 1.0) < missing_p) {
      v = kMissing;
    } else if (ties) {
      v = std::round(rng.normal() * 2.0) / 2.0;
    } else {
      v = rng.normal() * 3.0 + rng.uniform(-1.0, 1.0);
    }
  }
  return out;
}

// Bit-level equality that also matches NaN payloads.
::testing::AssertionResult same_bits(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, 8);
  std::memcpy(&ub, &b, 8);
  if (ua == ub) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (bits differ by " << (ua ^ ub) << ")";
}

TEST(SimdKernels, SumDotBitIdentical) {
  const auto tiers = testable_tiers();
  const KernelTable* sc = table_scalar();
  ASSERT_NE(sc, nullptr);
  Rng rng(20260808);
  for (const std::size_t n : kSizes) {
    // +3 head slack so we can probe deliberately unaligned base pointers.
    auto a = draw(rng, n + 3, 0.0, false);
    auto b = draw(rng, n + 3, 0.0, false);
    for (std::size_t off = 0; off < 3; ++off) {
      const double s0 = sc->sum(a.data() + off, n);
      const double d0 = sc->dot(a.data() + off, b.data() + off, n);
      for (const KernelTable* t : tiers) {
        EXPECT_TRUE(same_bits(s0, t->sum(a.data() + off, n)))
            << "sum n=" << n << " off=" << off;
        EXPECT_TRUE(same_bits(d0, t->dot(a.data() + off, b.data() + off, n)))
            << "dot n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdKernels, GramBitIdentical) {
  const auto tiers = testable_tiers();
  const KernelTable* sc = table_scalar();
  Rng rng(7);
  for (const std::size_t cols : {std::size_t{1}, std::size_t{2},
                                 std::size_t{3}, std::size_t{5},
                                 std::size_t{8}}) {
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{33},
          std::size_t{100}, std::size_t{257}}) {
      auto packed = draw(rng, n * cols, 0.0, false);
      const std::size_t gn = (cols + 1) * (cols + 1);
      std::vector<double> g0(gn, 0.0);
      sc->accumulate_gram(packed.data(), n, cols, g0.data());
      for (const KernelTable* t : tiers) {
        std::vector<double> g1(gn, 0.0);
        t->accumulate_gram(packed.data(), n, cols, g1.data());
        for (std::size_t i = 0; i < gn; ++i) {
          EXPECT_TRUE(same_bits(g0[i], g1[i]))
              << "gram cols=" << cols << " n=" << n << " entry=" << i;
        }
      }
    }
  }
}

TEST(SimdKernels, CountCmpMatchesBruteForceAndTiers) {
  const auto tiers = testable_tiers();
  const KernelTable* sc = table_scalar();
  Rng rng(99);
  for (const std::size_t n : kSizes) {
    // Tie-heavy with missing sprinkled in: NaN must count as neither
    // below nor equal, exactly like the brute-force loop below.
    auto ys = draw(rng, n, 0.15, true);
    for (int probe = 0; probe < 8; ++probe) {
      const double x = std::round(rng.normal() * 2.0) / 2.0;
      std::uint64_t below = 0, equal = 0;
      for (const double y : ys) {
        if (y < x) ++below;
        if (y == x) ++equal;
      }
      const CmpCount c0 = sc->count_cmp(ys.data(), n, x);
      EXPECT_EQ(c0.below, below) << "n=" << n;
      EXPECT_EQ(c0.equal, equal) << "n=" << n;
      for (const KernelTable* t : tiers) {
        const CmpCount c1 = t->count_cmp(ys.data(), n, x);
        EXPECT_EQ(c0.below, c1.below) << "n=" << n;
        EXPECT_EQ(c0.equal, c1.equal) << "n=" << n;
      }
    }
  }
}

TEST(SimdKernels, MissingScansAgreeIncludingAllMissing) {
  const auto tiers = testable_tiers();
  const KernelTable* sc = table_scalar();
  Rng rng(5);
  for (const std::size_t n : kSizes) {
    for (const double p : {0.0, 0.3, 1.0}) {  // none / sparse / all-missing
      auto xs = draw(rng, n, p, true);
      const std::size_t words = (n + 63) / 64;
      std::vector<std::uint64_t> b0(words + 1, ~std::uint64_t{0});
      std::vector<std::uint64_t> b1(words + 1, ~std::uint64_t{0});
      sc->scan_missing_bits(xs.data(), n, b0.data());
      std::size_t expect = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const bool bit = (b0[i / 64] >> (i % 64)) & 1u;
        EXPECT_EQ(bit, is_missing(xs[i])) << "n=" << n << " i=" << i;
        expect += is_missing(xs[i]);
      }
      EXPECT_EQ(sc->count_missing(xs.data(), n), expect);
      for (const KernelTable* t : tiers) {
        t->scan_missing_bits(xs.data(), n, b1.data());
        for (std::size_t w = 0; w < words; ++w)
          EXPECT_EQ(b0[w], b1[w]) << "n=" << n << " word=" << w;
        EXPECT_EQ(t->count_missing(xs.data(), n), expect) << "n=" << n;
      }
      // The word after the bitmap must never be touched.
      EXPECT_EQ(b0[words], ~std::uint64_t{0});
      EXPECT_EQ(b1[words], ~std::uint64_t{0});
    }
  }
}

TEST(SimdKernels, FastMathWithinRelativeTolerance) {
  const auto tiers = testable_tiers();
  const KernelTable* sc = table_scalar();
  Rng rng(1234);
  for (const std::size_t n : {std::size_t{9}, std::size_t{100},
                              std::size_t{1000}}) {
    auto a = draw(rng, n, 0.0, false);
    auto b = draw(rng, n, 0.0, false);
    const double exact = sc->dot(a.data(), b.data(), n);
    std::vector<const KernelTable*> all = tiers;
    all.push_back(sc);
    for (const KernelTable* t : all) {
      const double fast = t->dot_fast(a.data(), b.data(), n);
      EXPECT_NEAR(fast, exact, 1e-9 * (1.0 + std::abs(exact)))
          << "n=" << n;
    }
  }
}

TEST(SimdDispatch, ParseAndNames) {
  EXPECT_EQ(parse_tier("scalar"), Tier::kScalar);
  EXPECT_EQ(parse_tier("sse2"), Tier::kSse2);
  EXPECT_EQ(parse_tier("avx2"), Tier::kAvx2);
  EXPECT_EQ(parse_tier("avx512"), Tier::kAvx512);
  EXPECT_EQ(parse_tier("neon"), Tier::kNeon);
  EXPECT_FALSE(parse_tier("sse4").has_value());
  EXPECT_FALSE(parse_tier("").has_value());
  for (int i = 0; i < kTierCount; ++i) {
    const Tier t = static_cast<Tier>(i);
    EXPECT_EQ(parse_tier(tier_name(t)), t);
  }
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndSwitchable) {
  EXPECT_TRUE(tier_compiled(Tier::kScalar));
  EXPECT_TRUE(tier_supported(Tier::kScalar));
  EXPECT_TRUE(tier_supported(detected_tier()));
  const Tier before = active_tier();
  ASSERT_TRUE(set_active_tier(Tier::kScalar));
  EXPECT_EQ(active_tier(), Tier::kScalar);
  EXPECT_EQ(&kernels(), table_scalar());
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_FALSE(set_active_tier(Tier::kNeon));  // never supported on x86
  EXPECT_EQ(active_tier(), Tier::kScalar);     // failed set leaves state
#endif
  ASSERT_TRUE(set_active_tier(before));
  EXPECT_EQ(active_tier(), before);
}

}  // namespace
}  // namespace litmus::ts::simd
