#include "tsmath/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tsmath/random.h"

namespace litmus::ts {
namespace {

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, MeanSkipsMissing) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, kMissing, 3.0}), 2.0);
}

TEST(Stats, MeanOfEmptyIsMissing) {
  EXPECT_TRUE(is_missing(mean(std::vector<double>{})));
  EXPECT_TRUE(is_missing(mean(std::vector<double>{kMissing})));
}

TEST(Stats, VarianceUnbiased) {
  // Sample variance of {1,2,3,4} = 5/3.
  EXPECT_NEAR(variance(std::vector<double>{1, 2, 3, 4}), 5.0 / 3.0, 1e-12);
}

TEST(Stats, VarianceNeedsTwoPoints) {
  EXPECT_TRUE(is_missing(variance(std::vector<double>{5.0})));
}

TEST(Stats, StddevIsRootOfVariance) {
  const std::vector<double> v{2.0, 4.0, 6.0};
  EXPECT_NEAR(stddev(v), std::sqrt(variance(v)), 1e-12);
}

TEST(Stats, MinMaxSkipMissing) {
  const std::vector<double> v{kMissing, 3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 1.5);
  EXPECT_NEAR(quantile(v, 0.25), 0.75, 1e-12);
}

TEST(Stats, QuantileUnsorted) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{9.0, 1.0, 5.0}), 5.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(Stats, MadOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(mad(std::vector<double>{5, 5, 5, 5}), 0.0);
}

TEST(Stats, MadEstimatesGaussianSigma) {
  Rng rng(42);
  std::vector<double> v(20000);
  for (auto& x : v) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mad(v), 2.0, 0.1);
}

TEST(Stats, MadIgnoresOutliers) {
  std::vector<double> v{1, 2, 3, 4, 5, 1000.0};
  EXPECT_LT(mad(v), 5.0);
  EXPECT_GT(stddev(v), 100.0);  // the non-robust scale explodes
}

TEST(Stats, IqrBasic) {
  const std::vector<double> v{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(iqr(v), 2.0);
}

TEST(Stats, CovarianceOfIndependentNearZero) {
  Rng rng(7);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(covariance(x, y), 0.0, 0.06);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsMissing) {
  EXPECT_TRUE(is_missing(
      pearson(std::vector<double>{1, 1, 1}, std::vector<double>{1, 2, 3})));
}

TEST(Stats, PearsonPairwiseComplete) {
  const std::vector<double> x{1, kMissing, 3, 4};
  const std::vector<double> y{2, 100.0, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));  // monotone, nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 0.95);
}

TEST(Stats, AutocorrelationLagZeroIsOne) {
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{1, 2, 3}, 0), 1.0);
}

TEST(Stats, AutocorrelationOfAr1MatchesRho) {
  Rng rng(11);
  const double rho = 0.7;
  std::vector<double> v(20000);
  double state = 0;
  for (auto& x : v) {
    state = rho * state + rng.normal() * std::sqrt(1 - rho * rho);
    x = state;
  }
  EXPECT_NEAR(autocorrelation(v, 1), rho, 0.03);
}

TEST(Stats, AutocorrelationTooShortIsMissing) {
  EXPECT_TRUE(is_missing(autocorrelation(std::vector<double>{1.0, 2.0}, 5)));
}

TEST(Stats, SummaryFields) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0, kMissing};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, SummaryOfEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_TRUE(is_missing(s.mean));
}

TEST(Stats, RobustZscoresCenterAndScale) {
  Rng rng(3);
  std::vector<double> v(10000);
  for (auto& x : v) x = rng.normal(50.0, 5.0);
  const std::vector<double> z = robust_zscores(v);
  EXPECT_NEAR(median(z), 0.0, 0.05);
  EXPECT_NEAR(mad(z), 1.0, 0.05);
}

TEST(Stats, RobustZscoresDegenerateAllMissing) {
  const std::vector<double> z =
      robust_zscores(std::vector<double>{3.0, 3.0, 3.0});
  for (double v : z) EXPECT_TRUE(is_missing(v));  // zero MAD -> undefined
}

// Property sweep: quantile is monotone in q and bounded by min/max.
class QuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuantileProperty, MonotoneAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v(200);
  for (auto& x : v) x = rng.uniform(-10.0, 10.0);
  double prev = quantile(v, 0.0);
  EXPECT_DOUBLE_EQ(prev, min_value(v));
  for (double q = 0.1; q <= 1.0001; q += 0.1) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), max_value(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property sweep: mean/median/mad invariance under shift, scaling under
// positive scale.
class AffineProperty : public ::testing::TestWithParam<int> {};

TEST_P(AffineProperty, ShiftAndScale) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v(300);
  for (auto& x : v) x = rng.normal(0.0, 3.0);
  const double a = rng.uniform(0.5, 4.0);
  const double b = rng.uniform(-20.0, 20.0);
  std::vector<double> w = v;
  for (auto& x : w) x = a * x + b;
  EXPECT_NEAR(mean(w), a * mean(v) + b, 1e-9);
  EXPECT_NEAR(median(w), a * median(v) + b, 1e-9);
  EXPECT_NEAR(mad(w), a * mad(v), 1e-9);
  EXPECT_NEAR(stddev(w), a * stddev(v), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace litmus::ts
