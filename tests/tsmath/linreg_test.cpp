#include "tsmath/linreg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tsmath/random.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

Matrix random_design(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix x(rows, cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) x(r, c) = rng.normal();
  return x;
}

TEST(QrSolve, ExactSquareSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const std::vector<double> b{5.0, 10.0};
  const std::vector<double> x = qr_solve(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(QrSolve, OverdeterminedLeastSquares) {
  // y = 2x fitted to 3 points with symmetric perturbation: slope stays 2.
  Matrix a(3, 1);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  const std::vector<double> b{2.1, 4.0, 5.9};
  const std::vector<double> x = qr_solve(a, b);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_NEAR(x[0], (2.1 + 8.0 + 17.7) / 14.0, 1e-10);
}

TEST(QrSolve, RankDeficientReturnsEmpty) {
  Matrix a(3, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = 2.0 * static_cast<double>(r + 1);  // collinear column
  }
  EXPECT_TRUE(qr_solve(a, std::vector<double>{1, 2, 3}).empty());
}

TEST(QrSolve, UnderdeterminedReturnsEmpty) {
  Matrix a(1, 2, 1.0);
  EXPECT_TRUE(qr_solve(a, std::vector<double>{1.0}).empty());
}

TEST(QrSolve, SizeMismatchThrows) {
  Matrix a(2, 1, 1.0);
  EXPECT_THROW(qr_solve(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(FitOls, RecoversCoefficientsExactly) {
  Rng rng(20);
  Matrix x = random_design(rng, 60, 3);
  std::vector<double> y(60);
  for (std::size_t r = 0; r < 60; ++r)
    y[r] = 4.0 + 1.5 * x(r, 0) - 2.0 * x(r, 1) + 0.5 * x(r, 2);
  const LinearModel m = fit_ols(x, y, true);
  ASSERT_TRUE(m.ok);
  EXPECT_NEAR(m.intercept, 4.0, 1e-9);
  EXPECT_NEAR(m.coefficients[0], 1.5, 1e-9);
  EXPECT_NEAR(m.coefficients[1], -2.0, 1e-9);
  EXPECT_NEAR(m.coefficients[2], 0.5, 1e-9);
  EXPECT_NEAR(m.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(m.residual_stddev, 0.0, 1e-8);
}

TEST(FitOls, WithoutInterceptForcesOrigin) {
  Rng rng(21);
  Matrix x = random_design(rng, 50, 1);
  std::vector<double> y(50);
  for (std::size_t r = 0; r < 50; ++r) y[r] = 3.0 * x(r, 0);
  const LinearModel m = fit_ols(x, y, false);
  ASSERT_TRUE(m.ok);
  EXPECT_FALSE(m.with_intercept == false && m.intercept != 0.0);
  EXPECT_NEAR(m.coefficients[0], 3.0, 1e-9);
}

TEST(FitOls, NoisyFitHasReasonableRSquared) {
  Rng rng(22);
  Matrix x = random_design(rng, 500, 2);
  std::vector<double> y(500);
  for (std::size_t r = 0; r < 500; ++r)
    y[r] = x(r, 0) + x(r, 1) + rng.normal(0.0, 0.5);
  const LinearModel m = fit_ols(x, y, true);
  ASSERT_TRUE(m.ok);
  // Signal var 2, noise var 0.25 -> R^2 ~ 0.89.
  EXPECT_NEAR(m.r_squared, 2.0 / 2.25, 0.04);
  EXPECT_NEAR(m.residual_stddev, 0.5, 0.06);
}

TEST(FitOls, DropsRowsWithMissingValues) {
  Rng rng(23);
  Matrix x = random_design(rng, 40, 1);
  std::vector<double> y(40);
  for (std::size_t r = 0; r < 40; ++r) y[r] = 2.0 * x(r, 0) + 1.0;
  // Poison some rows; the fit must still be exact on the rest.
  y[3] = kMissing;
  x(7, 0) = kMissing;
  const LinearModel m = fit_ols(x, y, true);
  ASSERT_TRUE(m.ok);
  EXPECT_NEAR(m.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(m.intercept, 1.0, 1e-9);
}

TEST(FitOls, TooFewRowsNotOk) {
  Matrix x(4, 3, 1.0);
  const LinearModel m = fit_ols(x, std::vector<double>{1, 2, 3, 4}, true);
  EXPECT_FALSE(m.ok);
}

TEST(FitOls, CollinearDesignNotOk) {
  Rng rng(24);
  Matrix x(30, 2);
  for (std::size_t r = 0; r < 30; ++r) {
    x(r, 0) = rng.normal();
    x(r, 1) = 3.0 * x(r, 0);
  }
  std::vector<double> y(30);
  for (std::size_t r = 0; r < 30; ++r) y[r] = x(r, 0);
  EXPECT_FALSE(fit_ols(x, y, true).ok);
}

TEST(FitOls, RowCountMismatchThrows) {
  Matrix x(5, 1, 1.0);
  EXPECT_THROW(fit_ols(x, std::vector<double>{1.0, 2.0}, true),
               std::invalid_argument);
}

TEST(LinearModel, PredictRowAndMatrix) {
  LinearModel m;
  m.coefficients = {2.0, -1.0};
  m.intercept = 0.5;
  m.ok = true;
  EXPECT_DOUBLE_EQ(m.predict_row(std::vector<double>{1.0, 2.0}), 0.5);
  Matrix x(2, 2);
  x(0, 0) = 1;
  x(0, 1) = 2;
  x(1, 0) = 0;
  x(1, 1) = 0;
  const std::vector<double> y = m.predict(x);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
}

TEST(LinearModel, PredictRowMissingInputGivesMissing) {
  LinearModel m;
  m.coefficients = {1.0};
  EXPECT_TRUE(is_missing(m.predict_row(std::vector<double>{kMissing})));
}

TEST(LinearModel, PredictRowSizeMismatchThrows) {
  LinearModel m;
  m.coefficients = {1.0, 2.0};
  EXPECT_THROW(m.predict_row(std::vector<double>{1.0}),
               std::invalid_argument);
}

// Property: in-sample prediction through fit_ols never increases SSE vs the
// mean-only model (R^2 >= 0), across random problems.
class OlsProperty : public ::testing::TestWithParam<int> {};

TEST_P(OlsProperty, RSquaredNonNegativeAndBounded) {
  Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t cols = 1 + GetParam() % 4;
  Matrix x = random_design(rng, 80, cols);
  std::vector<double> y(80);
  for (auto& v : y) v = rng.normal();
  const LinearModel m = fit_ols(x, y, true);
  ASSERT_TRUE(m.ok);
  EXPECT_GE(m.r_squared, 0.0);
  EXPECT_LE(m.r_squared, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OlsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace litmus::ts
