#include "tsmath/normal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace litmus::ts {
namespace {

TEST(Normal, PdfPeakAtZero) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_GT(normal_pdf(0.0), normal_pdf(0.5));
  EXPECT_DOUBLE_EQ(normal_pdf(2.0), normal_pdf(-2.0));
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(Normal, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-7);
}

TEST(Normal, QuantileCdfRoundTrip) {
  for (double p = 0.001; p < 1.0; p += 0.037)
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
}

TEST(Normal, QuantileExtremeTails) {
  EXPECT_NEAR(normal_cdf(normal_quantile(1e-10)), 1e-10, 1e-12);
  EXPECT_NEAR(normal_cdf(normal_quantile(1.0 - 1e-10)), 1.0 - 1e-10, 1e-12);
}

TEST(Normal, QuantileRejectsOutOfDomain) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.5), std::domain_error);
}

TEST(Normal, TwoSidedP) {
  EXPECT_NEAR(two_sided_p(0.0), 1.0, 1e-12);
  EXPECT_NEAR(two_sided_p(1.959963984540054), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(two_sided_p(2.5), two_sided_p(-2.5));
  EXPECT_TRUE(std::isnan(two_sided_p(std::nan(""))));
}

}  // namespace
}  // namespace litmus::ts
