#include "tsmath/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>

namespace litmus::ts {
namespace {

TEST(TimeSeries, DefaultIsEmpty) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.observed_count(), 0u);
}

TEST(TimeSeries, ConstructsFilledWithMissing) {
  TimeSeries s(10, 5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.start_bin(), 10);
  EXPECT_EQ(s.end_bin(), 15);
  EXPECT_EQ(s.observed_count(), 0u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_TRUE(is_missing(s[i]));
}

TEST(TimeSeries, ConstructsFromValues) {
  TimeSeries s(-2, {1.0, 2.0, 3.0});
  EXPECT_EQ(s.start_bin(), -2);
  EXPECT_EQ(s.end_bin(), 1);
  EXPECT_DOUBLE_EQ(s.at_bin(-2), 1.0);
  EXPECT_DOUBLE_EQ(s.at_bin(0), 3.0);
}

TEST(TimeSeries, RejectsNonPositiveBinMinutes) {
  EXPECT_THROW(TimeSeries(0, 3, 0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(0, std::vector<double>{1.0}, -60),
               std::invalid_argument);
}

TEST(TimeSeries, AtBinOutsideRangeIsMissing) {
  TimeSeries s(0, {1.0, 2.0});
  EXPECT_TRUE(is_missing(s.at_bin(-1)));
  EXPECT_TRUE(is_missing(s.at_bin(2)));
}

TEST(TimeSeries, SetBinOutsideRangeIsIgnored) {
  TimeSeries s(0, {1.0, 2.0});
  s.set_bin(5, 9.0);
  s.set_bin(-1, 9.0);
  EXPECT_DOUBLE_EQ(s.at_bin(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at_bin(1), 2.0);
}

TEST(TimeSeries, ObservedCountSkipsMissing) {
  TimeSeries s(0, {1.0, kMissing, 3.0, kMissing});
  EXPECT_EQ(s.observed_count(), 2u);
  EXPECT_EQ(s.observed(), (std::vector<double>{1.0, 3.0}));
}

TEST(TimeSeries, SliceClampsToBounds) {
  TimeSeries s(5, {1.0, 2.0, 3.0, 4.0});
  TimeSeries sub = s.slice_bins(0, 7);
  EXPECT_EQ(sub.start_bin(), 5);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.at_bin(6), 2.0);
}

TEST(TimeSeries, SliceDisjointIsEmpty) {
  TimeSeries s(5, {1.0, 2.0});
  EXPECT_TRUE(s.slice_bins(10, 20).empty());
  EXPECT_TRUE(s.slice_bins(7, 5).empty());
}

TEST(TimeSeries, WindowBeforeEndsExclusive) {
  TimeSeries s(0, {0.0, 1.0, 2.0, 3.0, 4.0});
  TimeSeries w = s.window_before(3, 2);
  EXPECT_EQ(w.start_bin(), 1);
  EXPECT_EQ(w.end_bin(), 3);
  EXPECT_DOUBLE_EQ(w.at_bin(2), 2.0);
  EXPECT_TRUE(is_missing(w.at_bin(3)));
}

TEST(TimeSeries, WindowAfterStartsInclusive) {
  TimeSeries s(0, {0.0, 1.0, 2.0, 3.0, 4.0});
  TimeSeries w = s.window_after(3, 2);
  EXPECT_EQ(w.start_bin(), 3);
  EXPECT_DOUBLE_EQ(w.at_bin(3), 3.0);
  EXPECT_DOUBLE_EQ(w.at_bin(4), 4.0);
}

TEST(TimeSeries, MinusAlignsOnOverlap) {
  TimeSeries a(0, {1.0, 2.0, 3.0});
  TimeSeries b(1, {10.0, 10.0, 10.0});
  TimeSeries d = a.minus(b);
  EXPECT_EQ(d.start_bin(), 1);
  EXPECT_EQ(d.end_bin(), 3);
  EXPECT_DOUBLE_EQ(d.at_bin(1), -8.0);
  EXPECT_DOUBLE_EQ(d.at_bin(2), -7.0);
}

TEST(TimeSeries, MinusPropagatesMissing) {
  TimeSeries a(0, {1.0, kMissing});
  TimeSeries b(0, {1.0, 1.0});
  TimeSeries d = a.minus(b);
  EXPECT_DOUBLE_EQ(d.at_bin(0), 0.0);
  EXPECT_TRUE(is_missing(d.at_bin(1)));
}

TEST(TimeSeries, AddLevelAffectsHalfOpenRange) {
  TimeSeries s(0, {1.0, 1.0, 1.0, 1.0});
  s.add_level(1, 3, 0.5);
  EXPECT_DOUBLE_EQ(s.at_bin(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at_bin(1), 1.5);
  EXPECT_DOUBLE_EQ(s.at_bin(2), 1.5);
  EXPECT_DOUBLE_EQ(s.at_bin(3), 1.0);
}

TEST(TimeSeries, AddLevelSkipsMissing) {
  TimeSeries s(0, {kMissing, 1.0});
  s.add_level(0, 2, 1.0);
  EXPECT_TRUE(is_missing(s.at_bin(0)));
  EXPECT_DOUBLE_EQ(s.at_bin(1), 2.0);
}

TEST(TimeSeries, AddRampIsLinear) {
  TimeSeries s(0, std::vector<double>(5, 0.0));
  s.add_ramp(0, 5, 4.0);  // bins 0..4 get 0,1,2,3,4
  for (int b = 0; b < 5; ++b) EXPECT_DOUBLE_EQ(s.at_bin(b), b);
}

TEST(TimeSeries, AddRampDegeneratesToLevel) {
  TimeSeries s(0, {0.0, 0.0});
  s.add_ramp(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(s.at_bin(0), 2.0);
  EXPECT_DOUBLE_EQ(s.at_bin(1), 0.0);
}

TEST(TimeSeries, ClampBoundsValues) {
  TimeSeries s(0, {-0.5, 0.5, 1.5, kMissing});
  s.clamp(0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.at_bin(0), 0.0);
  EXPECT_DOUBLE_EQ(s.at_bin(1), 0.5);
  EXPECT_DOUBLE_EQ(s.at_bin(2), 1.0);
  EXPECT_TRUE(is_missing(s.at_bin(3)));
}

TEST(CommonRange, IntersectsSpans) {
  std::vector<TimeSeries> v;
  v.emplace_back(0, 10u);
  v.emplace_back(3, 10u);
  v.emplace_back(-5, 10u);
  const BinRange r = common_range(v);
  EXPECT_EQ(r.from, 3);
  EXPECT_EQ(r.to, 5);
  EXPECT_EQ(r.size(), 2u);
}

TEST(CommonRange, DisjointIsEmpty) {
  std::vector<TimeSeries> v;
  v.emplace_back(0, 3u);
  v.emplace_back(10, 3u);
  EXPECT_TRUE(common_range(v).empty());
  EXPECT_EQ(common_range(v).size(), 0u);
}

TEST(CommonRange, EmptyInputIsEmpty) {
  EXPECT_TRUE(common_range({}).empty());
}

TEST(TimeSeries, IsMissingDetectsOnlyNan) {
  EXPECT_TRUE(is_missing(kMissing));
  EXPECT_TRUE(is_missing(std::nan("")));
  EXPECT_FALSE(is_missing(0.0));
  EXPECT_FALSE(is_missing(std::numeric_limits<double>::infinity()));
}

TEST(TimeSeries, CopyRangeIntoMatchesAtBinEverywhere) {
  const TimeSeries s(10, {1.0, 2.0, kMissing, 4.0, 5.0});
  // Sweep windows that fall before, straddle, inside, and after the
  // series; every output bin must equal at_bin().
  for (std::int64_t from = 2; from <= 18; ++from) {
    for (std::size_t n : {0u, 1u, 3u, 8u}) {
      std::vector<double> out(n, -99.0);
      s.copy_range_into(from, out);
      for (std::size_t i = 0; i < n; ++i) {
        const double want = s.at_bin(from + static_cast<std::int64_t>(i));
        if (is_missing(want)) {
          EXPECT_TRUE(is_missing(out[i])) << "from=" << from << " i=" << i;
        } else {
          EXPECT_EQ(out[i], want) << "from=" << from << " i=" << i;
        }
      }
    }
  }
}

TEST(TimeSeries, CopyRangeIntoEmptySeriesFillsMissing) {
  const TimeSeries s;
  std::vector<double> out(4, 0.0);
  s.copy_range_into(-2, out);
  for (double v : out) EXPECT_TRUE(is_missing(v));
}

}  // namespace
}  // namespace litmus::ts
