#include "tsmath/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace litmus::ts {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformMeanIsCenter) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0, ss = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    ss += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(ss / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(100.0, 3.0);
  EXPECT_NEAR(sum / n, 100.0, 0.1);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng a(55);
  Rng child1 = a.fork(1);
  a.next_u64();  // advancing the parent must not change future forks? No:
  // fork() does not advance the parent but depends on its *current* state,
  // which next_u64() mutates. What must hold: same state + same tag => same
  // child; different tags => different children.
  Rng b(55);
  Rng child2 = b.fork(1);
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
  Rng child3 = b.fork(2);
  Rng child4 = b.fork(1);
  EXPECT_NE(child3.next_u64(), child4.next_u64());
}

TEST(SampleWithoutReplacement, BasicValidity) {
  Rng rng(13);
  const auto s = sample_without_replacement(rng, 10, 4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (const auto i : s) EXPECT_LT(i, 10u);
}

TEST(SampleWithoutReplacement, FullSample) {
  Rng rng(14);
  const auto s = sample_without_replacement(rng, 5, 5);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SampleWithoutReplacement, KGreaterThanNThrows) {
  Rng rng(15);
  EXPECT_THROW(sample_without_replacement(rng, 3, 4), std::invalid_argument);
}

TEST(SampleWithoutReplacement, ApproximatelyUniform) {
  Rng rng(16);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t)
    for (const auto i : sample_without_replacement(rng, 10, 3)) ++counts[i];
  // Each index should appear in ~30% of samples.
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
}

TEST(SampleWithoutReplacement, ZeroK) {
  Rng rng(17);
  EXPECT_TRUE(sample_without_replacement(rng, 5, 0).empty());
}

}  // namespace
}  // namespace litmus::ts
