#include "tsmath/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tsmath/random.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

// Data with one dominant direction: x_i = loading_i * f + small noise.
Matrix one_factor_data(Rng& rng, std::size_t rows, std::size_t cols,
                       double noise = 0.1) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double f = rng.normal();
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = (1.0 + 0.1 * static_cast<double>(c)) * f +
                noise * rng.normal();
  }
  return m;
}

TEST(Pca, RecoversDominantDirection) {
  Rng rng(1);
  const Matrix m = one_factor_data(rng, 400, 5);
  const PcaModel model = fit_pca(m, 1);
  ASSERT_TRUE(model.ok);
  ASSERT_EQ(model.components.size(), 1u);
  // Direction proportional to the loadings (1, 1.1, ..., 1.4), normalized.
  const auto& pc = model.components[0];
  const double ratio = pc[4] / pc[0];
  EXPECT_NEAR(std::fabs(ratio), 1.4, 0.05);
  EXPECT_GT(model.explained_fraction(), 0.95);
}

TEST(Pca, ComponentsAreOrthonormal) {
  Rng rng(2);
  Matrix m(300, 4);
  for (std::size_t r = 0; r < 300; ++r) {
    const double f1 = rng.normal(), f2 = rng.normal();
    m(r, 0) = f1;
    m(r, 1) = f1 + 0.5 * f2;
    m(r, 2) = f2;
    m(r, 3) = rng.normal(0.0, 0.2);
  }
  const PcaModel model = fit_pca(m, 3);
  ASSERT_TRUE(model.ok);
  for (std::size_t i = 0; i < model.components.size(); ++i) {
    double norm = 0;
    for (double v : model.components[i]) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-8);
    for (std::size_t j = i + 1; j < model.components.size(); ++j) {
      double dot = 0;
      for (std::size_t k = 0; k < 4; ++k)
        dot += model.components[i][k] * model.components[j][k];
      EXPECT_NEAR(dot, 0.0, 1e-6);
    }
  }
}

TEST(Pca, EigenvaluesDecreasing) {
  Rng rng(3);
  Matrix m(500, 6);
  for (std::size_t r = 0; r < 500; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      m(r, c) = rng.normal(0.0, 1.0 + static_cast<double>(c));
  const PcaModel model = fit_pca(m, 4);
  ASSERT_TRUE(model.ok);
  for (std::size_t i = 1; i < model.eigenvalues.size(); ++i)
    EXPECT_GE(model.eigenvalues[i - 1], model.eigenvalues[i] - 1e-9);
}

TEST(Pca, ResidualSmallInSubspaceLargeOutside) {
  Rng rng(4);
  const Matrix m = one_factor_data(rng, 400, 5, 0.05);
  const PcaModel model = fit_pca(m, 1);
  ASSERT_TRUE(model.ok);
  // A row on the factor line has near-zero residual.
  std::vector<double> on_line(5);
  for (std::size_t c = 0; c < 5; ++c)
    on_line[c] = model.mean[c] + 2.0 * (1.0 + 0.1 * static_cast<double>(c));
  EXPECT_LT(model.residual_energy(on_line), 0.02);
  // A row orthogonal to it has large residual.
  std::vector<double> off_line = model.mean;
  off_line[0] += 3.0;
  off_line[4] -= 3.0;
  EXPECT_GT(model.residual_energy(off_line), 1.0);
}

TEST(Pca, MeanIsRemoved) {
  Rng rng(5);
  Matrix m(200, 3);
  for (std::size_t r = 0; r < 200; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      m(r, c) = 50.0 + rng.normal();
  const PcaModel model = fit_pca(m, 1);
  ASSERT_TRUE(model.ok);
  for (double mu : model.mean) EXPECT_NEAR(mu, 50.0, 0.3);
  // The mean row itself has ~zero residual.
  EXPECT_LT(model.residual_energy(model.mean), 0.05);
}

TEST(Pca, MissingRowsDroppedAndMissingQueriesNan) {
  Rng rng(6);
  Matrix m = one_factor_data(rng, 100, 3);
  m(0, 1) = kMissing;
  const PcaModel model = fit_pca(m, 1);
  ASSERT_TRUE(model.ok);
  const std::vector<double> bad{1.0, kMissing, 1.0};
  EXPECT_TRUE(is_missing(model.residual_energy(bad)));
}

TEST(Pca, TooFewRowsNotOk) {
  Matrix m(3, 5, 1.0);
  EXPECT_FALSE(fit_pca(m, 2).ok);
}

TEST(Pca, ClampsComponentCountToDims) {
  Rng rng(7);
  const Matrix m = one_factor_data(rng, 100, 3);
  const PcaModel model = fit_pca(m, 10);
  ASSERT_TRUE(model.ok);
  EXPECT_LE(model.components.size(), 3u);
}

}  // namespace
}  // namespace litmus::ts
