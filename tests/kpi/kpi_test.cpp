#include "kpi/kpi.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace litmus::kpi {
namespace {

TEST(KpiCatalogue, AllKpisEnumerated) {
  EXPECT_EQ(all_kpis().size(), 6u);
}

TEST(KpiCatalogue, InfoMatchesId) {
  for (const KpiId id : all_kpis()) EXPECT_EQ(info(id).id, id);
}

TEST(KpiCatalogue, Polarities) {
  EXPECT_EQ(info(KpiId::kVoiceRetainability).polarity,
            Polarity::kHigherIsBetter);
  EXPECT_EQ(info(KpiId::kDataThroughput).polarity,
            Polarity::kHigherIsBetter);
  EXPECT_EQ(info(KpiId::kDroppedVoiceCallRatio).polarity,
            Polarity::kLowerIsBetter);
}

TEST(KpiCatalogue, RatioFlagsAndRanges) {
  for (const KpiId id : all_kpis()) {
    const KpiInfo& k = info(id);
    if (k.is_ratio) {
      EXPECT_GE(k.typical_value, 0.0) << k.name;
      EXPECT_LE(k.typical_value, 1.0) << k.name;
    }
    EXPECT_GT(k.typical_noise, 0.0) << k.name;
  }
  EXPECT_FALSE(info(KpiId::kDataThroughput).is_ratio);
}

TEST(KpiCatalogue, NamesDistinct) {
  std::unordered_set<std::string_view> names;
  for (const KpiId id : all_kpis()) names.insert(info(id).name);
  EXPECT_EQ(names.size(), all_kpis().size());
}

TEST(KpiCatalogue, ParseRoundTrip) {
  for (const KpiId id : all_kpis())
    EXPECT_EQ(parse_kpi(to_string(id)), id);
  EXPECT_FALSE(parse_kpi("nonsense").has_value());
}

}  // namespace
}  // namespace litmus::kpi
