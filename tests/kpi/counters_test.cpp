#include "kpi/counters.h"

#include <gtest/gtest.h>

namespace litmus::kpi {
namespace {

CounterBin sample_bin() {
  CounterBin c;
  c.voice_attempts = 100;
  c.voice_blocked = 5;
  c.voice_established = 95;
  c.voice_dropped = 2;
  c.data_attempts = 200;
  c.data_blocked = 10;
  c.data_established = 190;
  c.data_dropped = 19;
  c.megabits_delivered = 3600.0;
  return c;
}

TEST(CounterBin, Accumulate) {
  CounterBin a = sample_bin();
  a += sample_bin();
  EXPECT_EQ(a.voice_attempts, 200u);
  EXPECT_EQ(a.data_dropped, 38u);
  EXPECT_DOUBLE_EQ(a.megabits_delivered, 7200.0);
}

TEST(ComputeKpi, VoiceAccessibility) {
  EXPECT_NEAR(compute_kpi(sample_bin(), KpiId::kVoiceAccessibility, 60),
              0.95, 1e-12);
}

TEST(ComputeKpi, VoiceRetainability) {
  EXPECT_NEAR(compute_kpi(sample_bin(), KpiId::kVoiceRetainability, 60),
              1.0 - 2.0 / 95.0, 1e-12);
}

TEST(ComputeKpi, DataAccessibilityAndRetainability) {
  EXPECT_NEAR(compute_kpi(sample_bin(), KpiId::kDataAccessibility, 60), 0.95,
              1e-12);
  EXPECT_NEAR(compute_kpi(sample_bin(), KpiId::kDataRetainability, 60), 0.9,
              1e-12);
}

TEST(ComputeKpi, ThroughputIsMbps) {
  // 3600 Mb over 60 minutes = 1 Mb/s.
  EXPECT_NEAR(compute_kpi(sample_bin(), KpiId::kDataThroughput, 60), 1.0,
              1e-12);
  EXPECT_NEAR(compute_kpi(sample_bin(), KpiId::kDataThroughput, 30), 2.0,
              1e-12);
}

TEST(ComputeKpi, DroppedCallRatio) {
  EXPECT_NEAR(compute_kpi(sample_bin(), KpiId::kDroppedVoiceCallRatio, 60),
              2.0 / 95.0, 1e-12);
}

TEST(ComputeKpi, ZeroDenominatorsAreMissing) {
  const CounterBin empty;
  for (const KpiId id :
       {KpiId::kVoiceAccessibility, KpiId::kVoiceRetainability,
        KpiId::kDataAccessibility, KpiId::kDataRetainability,
        KpiId::kDroppedVoiceCallRatio})
    EXPECT_TRUE(ts::is_missing(compute_kpi(empty, id, 60)));
  // Throughput of an idle bin is legitimately zero, not missing.
  EXPECT_DOUBLE_EQ(compute_kpi(empty, KpiId::kDataThroughput, 60), 0.0);
}

TEST(CounterSeries, SpanAndAccess) {
  CounterSeries s(10, 3);
  EXPECT_EQ(s.start_bin(), 10);
  EXPECT_EQ(s.end_bin(), 13);
  s.at_bin(11).voice_attempts = 7;
  EXPECT_EQ(s.at_bin(11).voice_attempts, 7u);
  EXPECT_THROW(s.at_bin(13), std::out_of_range);
  EXPECT_THROW(s.at_bin(9), std::out_of_range);
}

TEST(CounterSeries, KpiSeriesDerivation) {
  CounterSeries s(0, 2);
  s.at_bin(0) = sample_bin();
  // bin 1 left empty -> missing accessibility.
  const ts::TimeSeries k = s.kpi_series(KpiId::kVoiceAccessibility);
  EXPECT_NEAR(k.at_bin(0), 0.95, 1e-12);
  EXPECT_TRUE(ts::is_missing(k.at_bin(1)));
}

TEST(CounterSeries, PlusEqualsRequiresSameSpan) {
  CounterSeries a(0, 2), b(0, 2), c(1, 2);
  a.at_bin(0) = sample_bin();
  b.at_bin(0) = sample_bin();
  a += b;
  EXPECT_EQ(a.at_bin(0).voice_attempts, 200u);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(CounterSeries, RejectsBadBinMinutes) {
  EXPECT_THROW(CounterSeries(0, 2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace litmus::kpi
