#include "kpi/aggregate.h"

#include <gtest/gtest.h>

namespace litmus::kpi {
namespace {

CounterSeries make_series(std::uint64_t attempts, std::uint64_t drops,
                          std::size_t n = 4) {
  CounterSeries s(0, n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i].voice_attempts = attempts;
    s[i].voice_blocked = 0;
    s[i].voice_established = attempts;
    s[i].voice_dropped = drops;
  }
  return s;
}

TEST(SumCounters, AddsAcrossElements) {
  const std::vector<CounterSeries> v{make_series(100, 1), make_series(50, 5)};
  const CounterSeries total = sum_counters(v);
  EXPECT_EQ(total.at_bin(0).voice_attempts, 150u);
  EXPECT_EQ(total.at_bin(0).voice_dropped, 6u);
}

TEST(SumCounters, EmptyThrows) {
  EXPECT_THROW(sum_counters({}), std::invalid_argument);
}

TEST(AggregateKpi, RatioFromSummedCountersNotMeanOfRatios) {
  // Element A: 1000 calls, 10 drops (ratio 0.99). Element B: 10 calls, 5
  // drops (ratio 0.5). Correct traffic-weighted retainability is
  // 1 - 15/1010 ~ 0.985, not the unweighted mean 0.745.
  CounterSeries a(0, 1), b(0, 1);
  a[0].voice_established = 1000;
  a[0].voice_dropped = 10;
  b[0].voice_established = 10;
  b[0].voice_dropped = 5;
  const std::vector<CounterSeries> v{a, b};
  const ts::TimeSeries k = aggregate_kpi(v, KpiId::kVoiceRetainability);
  EXPECT_NEAR(k.at_bin(0), 1.0 - 15.0 / 1010.0, 1e-12);
}

TEST(Downsample, SumsGroups) {
  CounterSeries s(0, 5);
  for (std::size_t i = 0; i < 5; ++i) s[i].voice_attempts = 10;
  const CounterSeries d = downsample(s, 2);
  EXPECT_EQ(d.size(), 2u);  // trailing partial group dropped
  EXPECT_EQ(d[0].voice_attempts, 20u);
  EXPECT_EQ(d.bin_minutes(), 120);
}

TEST(Downsample, BadFactorThrows) {
  CounterSeries s(0, 4);
  EXPECT_THROW(downsample(s, 0), std::invalid_argument);
}

TEST(DownsampleMean, AveragesMissingAware) {
  ts::TimeSeries s(0, {1.0, 3.0, ts::kMissing, 5.0, 7.0, 9.0});
  const ts::TimeSeries d = downsample_mean(s, 2);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);  // single observed value in the group
  EXPECT_DOUBLE_EQ(d[2], 8.0);
}

TEST(DownsampleMean, AllMissingGroupStaysMissing) {
  ts::TimeSeries s(0, {ts::kMissing, ts::kMissing, 1.0, 1.0});
  const ts::TimeSeries d = downsample_mean(s, 2);
  EXPECT_TRUE(ts::is_missing(d[0]));
  EXPECT_DOUBLE_EQ(d[1], 1.0);
}

TEST(PointwiseMean, AlignsOnCommonRange) {
  std::vector<ts::TimeSeries> v;
  v.emplace_back(0, std::vector<double>{1.0, 2.0, 3.0});
  v.emplace_back(1, std::vector<double>{10.0, 20.0, 30.0});
  const ts::TimeSeries m = pointwise_mean(v);
  EXPECT_EQ(m.start_bin(), 1);
  EXPECT_EQ(m.end_bin(), 3);
  EXPECT_DOUBLE_EQ(m.at_bin(1), 6.0);
  EXPECT_DOUBLE_EQ(m.at_bin(2), 11.5);
}

TEST(PointwiseMean, SkipsMissingPerBin) {
  std::vector<ts::TimeSeries> v;
  v.emplace_back(0, std::vector<double>{1.0, ts::kMissing});
  v.emplace_back(0, std::vector<double>{3.0, 5.0});
  const ts::TimeSeries m = pointwise_mean(v);
  EXPECT_DOUBLE_EQ(m.at_bin(0), 2.0);
  EXPECT_DOUBLE_EQ(m.at_bin(1), 5.0);
}

TEST(PointwiseMean, EmptyThrows) {
  EXPECT_THROW(pointwise_mean({}), std::invalid_argument);
}

}  // namespace
}  // namespace litmus::kpi
