#include "kpi/cdr.h"

#include <gtest/gtest.h>

namespace litmus::kpi {
namespace {

CallDetailRecord rec(SessionType type, SessionOutcome outcome,
                     std::int64_t bin = 0, double mb = 5.0) {
  CallDetailRecord r;
  r.element = net::ElementId{1};
  r.bin = bin;
  r.type = type;
  r.outcome = outcome;
  r.megabits = mb;
  return r;
}

TEST(Accumulate, VoiceCompleted) {
  CounterBin b;
  accumulate(b, rec(SessionType::kVoice, SessionOutcome::kCompleted));
  EXPECT_EQ(b.voice_attempts, 1u);
  EXPECT_EQ(b.voice_established, 1u);
  EXPECT_EQ(b.voice_blocked, 0u);
  EXPECT_EQ(b.voice_dropped, 0u);
}

TEST(Accumulate, VoiceBlockedIsNotEstablished) {
  CounterBin b;
  accumulate(b, rec(SessionType::kVoice, SessionOutcome::kBlocked));
  EXPECT_EQ(b.voice_attempts, 1u);
  EXPECT_EQ(b.voice_established, 0u);
  EXPECT_EQ(b.voice_blocked, 1u);
}

TEST(Accumulate, VoiceDroppedIsEstablishedAndDropped) {
  CounterBin b;
  accumulate(b, rec(SessionType::kVoice, SessionOutcome::kDropped));
  EXPECT_EQ(b.voice_established, 1u);
  EXPECT_EQ(b.voice_dropped, 1u);
}

TEST(Accumulate, DataDeliversMegabits) {
  CounterBin b;
  accumulate(b, rec(SessionType::kData, SessionOutcome::kCompleted, 0, 8.0));
  accumulate(b, rec(SessionType::kData, SessionOutcome::kBlocked, 0, 8.0));
  EXPECT_EQ(b.data_attempts, 2u);
  EXPECT_EQ(b.data_established, 1u);
  EXPECT_DOUBLE_EQ(b.megabits_delivered, 8.0);  // blocked delivers nothing
}

TEST(AggregateCdrs, BinsRecordsAndIgnoresOutOfRange) {
  std::vector<CallDetailRecord> records{
      rec(SessionType::kVoice, SessionOutcome::kCompleted, 0),
      rec(SessionType::kVoice, SessionOutcome::kDropped, 1),
      rec(SessionType::kVoice, SessionOutcome::kCompleted, 5),   // outside
      rec(SessionType::kVoice, SessionOutcome::kCompleted, -1),  // outside
  };
  const CounterSeries s = aggregate_cdrs(records, 0, 2);
  EXPECT_EQ(s.at_bin(0).voice_attempts, 1u);
  EXPECT_EQ(s.at_bin(1).voice_dropped, 1u);
}

TEST(Synthesize, RatesMatchExpectations) {
  ts::Rng rng(77);
  SessionRates rates;
  rates.voice_attempts_per_bin = 300.0;
  rates.voice_block_prob = 0.1;
  rates.voice_drop_prob = 0.05;
  rates.data_attempts_per_bin = 150.0;

  CounterBin total;
  const int bins = 200;
  for (int b = 0; b < bins; ++b)
    for (const auto& r :
         synthesize_bin_records(rng, net::ElementId{2}, b, rates))
      accumulate(total, r);

  EXPECT_NEAR(static_cast<double>(total.voice_attempts) / bins, 300.0, 10.0);
  EXPECT_NEAR(static_cast<double>(total.data_attempts) / bins, 150.0, 8.0);
  const double block_rate = static_cast<double>(total.voice_blocked) /
                            static_cast<double>(total.voice_attempts);
  EXPECT_NEAR(block_rate, 0.1, 0.01);
  // Drop prob applies to non-blocked attempts.
  const double drop_rate = static_cast<double>(total.voice_dropped) /
                           static_cast<double>(total.voice_established);
  EXPECT_NEAR(drop_rate, 0.05, 0.01);
}

TEST(Synthesize, DeterministicGivenRngState) {
  ts::Rng a(5), b(5);
  const auto ra = synthesize_bin_records(a, net::ElementId{1}, 0, {});
  const auto rb = synthesize_bin_records(b, net::ElementId{1}, 0, {});
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].outcome, rb[i].outcome);
    EXPECT_DOUBLE_EQ(ra[i].megabits, rb[i].megabits);
  }
}

TEST(Synthesize, ZeroRatesProduceNothing) {
  ts::Rng rng(9);
  SessionRates rates;
  rates.voice_attempts_per_bin = 0.0;
  rates.data_attempts_per_bin = 0.0;
  EXPECT_TRUE(
      synthesize_bin_records(rng, net::ElementId{1}, 0, rates).empty());
}

TEST(Synthesize, DroppedDataDeliversPartialPayload) {
  ts::Rng rng(11);
  SessionRates rates;
  rates.voice_attempts_per_bin = 0.0;
  rates.data_attempts_per_bin = 500.0;
  rates.data_drop_prob = 1.0;  // every established session drops
  rates.data_block_prob = 0.0;
  double dropped_mb = 0.0;
  std::size_t dropped = 0;
  for (const auto& r :
       synthesize_bin_records(rng, net::ElementId{1}, 0, rates)) {
    ASSERT_EQ(r.outcome, SessionOutcome::kDropped);
    dropped_mb += r.megabits;
    ++dropped;
  }
  ASSERT_GT(dropped, 0u);
  // Partial delivery: mean well below the full-session mean of 8 Mb.
  EXPECT_LT(dropped_mb / dropped, 8.0);
}

}  // namespace
}  // namespace litmus::kpi
