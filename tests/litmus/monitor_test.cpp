#include "litmus/monitor.h"

#include <gtest/gtest.h>

#include <memory>

#include "cellnet/builder.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"

namespace litmus::core {
namespace {

struct Fixture {
  net::Topology topo;
  std::unique_ptr<sim::KpiGenerator> gen;
  net::ElementId study;
  std::vector<net::ElementId> controls;

  /// effect_sigma applied to the study subtree at `effect_bin`.
  Fixture(double effect_sigma, std::int64_t effect_bin,
          std::uint64_t seed = 733) {
    topo = net::build_small_region(net::Region::kMidwest, seed, 6, 4);
    const auto rncs = topo.of_kind(net::ElementKind::kRnc);
    study = rncs[0];
    controls.assign(rncs.begin() + 1, rncs.end());
    gen = std::make_unique<sim::KpiGenerator>(
        topo, sim::GeneratorConfig{.seed = seed});
    if (effect_sigma != 0.0) {
      sim::UpstreamEvent ev;
      ev.source = study;
      ev.start_bin = effect_bin;
      ev.sigma_shift = effect_sigma;
      gen->add_factor(std::make_shared<sim::NetworkEventFactor>(
          topo, std::vector<sim::UpstreamEvent>{ev}));
    }
  }

  SeriesProvider provider() {
    return [g = gen.get()](net::ElementId e, kpi::KpiId k, std::int64_t s,
                           std::size_t n) { return g->kpi_series(e, k, s, n); };
  }
};

constexpr auto kKpi = kpi::KpiId::kVoiceRetainability;

TEST(Monitor, ConfirmsDegradationAfterHysteresis) {
  Fixture f(-1.8, 0);
  ChangeMonitor monitor(f.provider(), f.study, f.controls, kKpi, 0);
  const auto readings = monitor.advance(14 * 24);
  ASSERT_GE(readings.size(), 3u);
  EXPECT_EQ(monitor.state(), MonitorState::kDegrading);
  // The first reading alone cannot have confirmed (needs 3 consecutive).
  EXPECT_NE(readings.front().state, MonitorState::kDegrading);
}

TEST(Monitor, QuietChangeStaysQuiet) {
  Fixture f(0.0, 0);
  ChangeMonitor monitor(f.provider(), f.study, f.controls, kKpi, 0);
  monitor.advance(14 * 24);
  EXPECT_EQ(monitor.state(), MonitorState::kQuiet);
}

TEST(Monitor, CatchesLateOnsetRegression) {
  // The defect appears five days after the change (e.g. a slow leak): the
  // one-shot assessment at +3d would pass, the monitor flips later.
  Fixture f(-1.8, 5 * 24);
  ChangeMonitor monitor(f.provider(), f.study, f.controls, kKpi, 0);
  monitor.advance(4 * 24);
  EXPECT_EQ(monitor.state(), MonitorState::kQuiet);
  monitor.advance(12 * 24);
  EXPECT_EQ(monitor.state(), MonitorState::kDegrading);
}

TEST(Monitor, AdvanceIsIncrementalAndIdempotent) {
  Fixture f(1.5, 0);
  ChangeMonitor monitor(f.provider(), f.study, f.controls, kKpi, 0);
  const auto first = monitor.advance(5 * 24);
  const auto again = monitor.advance(5 * 24);  // no new complete windows
  EXPECT_TRUE(again.empty());
  const auto more = monitor.advance(8 * 24);
  EXPECT_FALSE(more.empty());
  EXPECT_EQ(monitor.history().size(), first.size() + more.size());
}

TEST(Monitor, WarmupBeforeFirstWindow) {
  Fixture f(1.5, 0);
  ChangeMonitor monitor(f.provider(), f.study, f.controls, kKpi, 0);
  EXPECT_EQ(monitor.state(), MonitorState::kWarmup);
  EXPECT_TRUE(monitor.advance(2 * 24).empty());  // window is 3 days
  EXPECT_EQ(monitor.state(), MonitorState::kWarmup);
}

TEST(Monitor, ImprovementConfirmed) {
  Fixture f(1.8, 0);
  ChangeMonitor monitor(f.provider(), f.study, f.controls, kKpi, 0);
  monitor.advance(14 * 24);
  EXPECT_EQ(monitor.state(), MonitorState::kImproving);
}

TEST(Monitor, RejectsBadConfig) {
  Fixture f(0.0, 0);
  MonitorConfig bad;
  bad.window_bins = 4;
  EXPECT_THROW(
      ChangeMonitor(f.provider(), f.study, f.controls, kKpi, 0, bad),
      std::invalid_argument);
  EXPECT_THROW(ChangeMonitor(nullptr, f.study, f.controls, kKpi, 0),
               std::invalid_argument);
}

TEST(Monitor, StateNames) {
  EXPECT_STREQ(to_string(MonitorState::kWarmup), "warmup");
  EXPECT_STREQ(to_string(MonitorState::kDegrading), "degrading");
}

}  // namespace
}  // namespace litmus::core
