// The tentpole contract of the parallel subsystem: running the sampling
// loop on 1, 2 or 8 threads yields bit-identical forecasts and outcomes,
// and the Gram fast path changes performance, never answers.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "litmus/spatial_regression.h"
#include "obs/metrics.h"
#include "parallel/pool.h"
#include "test_windows.h"
#include "tsmath/timeseries.h"

namespace litmus::core {
namespace {

using testing::WindowSpec;
using testing::make_windows;

// NaN-safe bitwise equality (EXPECT_EQ on doubles rejects NaN == NaN, but
// missing forecast bins are NaN by design).
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_identical(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  ASSERT_EQ(a.start_bin(), b.start_bin());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_bits(a[i], b[i])) << "bin " << i;
}

void expect_identical(const RobustSpatialRegression::Forecast& a,
                      const RobustSpatialRegression::Forecast& b) {
  EXPECT_EQ(a.effective_k, b.effective_k);
  EXPECT_EQ(a.successful_iterations, b.successful_iterations);
  EXPECT_TRUE(same_bits(a.median_r_squared, b.median_r_squared));
  expect_identical(a.median_forecast_before, b.median_forecast_before);
  expect_identical(a.median_forecast_after, b.median_forecast_after);
  expect_identical(a.forecast_diff_before, b.forecast_diff_before);
  expect_identical(a.forecast_diff_after, b.forecast_diff_after);
}

WindowSpec default_spec() {
  WindowSpec spec;
  spec.n_controls = 12;
  spec.study_shift_sigma = -2.0;
  spec.contamination = {{2, 3.0}};
  spec.seed = 11;
  return spec;
}

TEST(ParallelDeterminism, ForecastBitIdenticalAcrossThreadCounts) {
  const ElementWindows w = make_windows(default_spec());
  SpatialRegressionParams params;
  params.n_iterations = 31;  // not a multiple of any thread count
  const RobustSpatialRegression algo(params);

  par::set_threads(1);
  RobustSpatialRegression::Forecast sequential;
  ASSERT_TRUE(algo.forecast(w, sequential));

  for (const std::size_t n_threads : {2u, 8u}) {
    par::set_threads(n_threads);
    RobustSpatialRegression::Forecast parallel_run;
    ASSERT_TRUE(algo.forecast(w, parallel_run));
    expect_identical(sequential, parallel_run);
  }
  par::set_threads(1);
}

TEST(ParallelDeterminism, OutcomeBitIdenticalAcrossThreadCounts) {
  const ElementWindows w = make_windows(default_spec());
  const RobustSpatialRegression algo;

  par::set_threads(1);
  const AnalysisOutcome sequential = algo.assess(w, kpi::KpiId::kVoiceRetainability);
  ASSERT_FALSE(sequential.degenerate);

  for (const std::size_t n_threads : {2u, 8u}) {
    par::set_threads(n_threads);
    const AnalysisOutcome out = algo.assess(w, kpi::KpiId::kVoiceRetainability);
    EXPECT_EQ(out.relative, sequential.relative);
    EXPECT_EQ(out.verdict, sequential.verdict);
    EXPECT_TRUE(same_bits(out.p_value, sequential.p_value));
    EXPECT_TRUE(same_bits(out.statistic, sequential.statistic));
    EXPECT_TRUE(same_bits(out.effect_kpi_units, sequential.effect_kpi_units));
    EXPECT_TRUE(same_bits(out.fit_r_squared, sequential.fit_r_squared));
    EXPECT_EQ(out.explanation.successful_iterations,
              sequential.explanation.successful_iterations);
  }
  par::set_threads(1);
}

// The adaptive contract (ISSUE 10): stopping decisions are a pure function
// of (seed, completed-round results), so adaptive-on runs are bit-identical
// — verdicts, forecasts, AND iterations-used — at any thread count.
TEST(ParallelDeterminism, AdaptiveForecastBitIdenticalAcrossThreadCounts) {
  const ElementWindows w = make_windows(default_spec());
  SpatialRegressionParams params;
  params.adaptive_sampling = true;
  params.n_iterations = 31;  // not a multiple of any thread count
  const RobustSpatialRegression algo(params);

  par::set_threads(1);
  RobustSpatialRegression::Forecast sequential;
  ASSERT_TRUE(algo.forecast(w, sequential));

  for (const std::size_t n_threads : {4u, 16u}) {
    par::set_threads(n_threads);
    RobustSpatialRegression::Forecast parallel_run;
    ASSERT_TRUE(algo.forecast(w, parallel_run));
    EXPECT_EQ(parallel_run.iterations_attempted,
              sequential.iterations_attempted)
        << n_threads << " threads";
    EXPECT_EQ(parallel_run.stop_reason, sequential.stop_reason);
    expect_identical(sequential, parallel_run);
  }
  par::set_threads(1);
}

TEST(ParallelDeterminism, AdaptiveOutcomeBitIdenticalAcrossThreadCounts) {
  // An easy shift (no contamination) so the adaptive loop actually stops
  // early — the identity must hold on the early-stopped path, not just
  // when the budget runs out.
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  const ElementWindows w = make_windows(spec);
  SpatialRegressionParams params;
  params.adaptive_sampling = true;
  const RobustSpatialRegression algo(params);

  par::set_threads(1);
  const AnalysisOutcome sequential =
      algo.assess(w, kpi::KpiId::kVoiceRetainability);
  ASSERT_FALSE(sequential.degenerate);
  ASSERT_LT(sequential.explanation.iterations_used,
            sequential.explanation.iterations_requested);

  for (const std::size_t n_threads : {4u, 16u}) {
    par::set_threads(n_threads);
    const AnalysisOutcome out = algo.assess(w, kpi::KpiId::kVoiceRetainability);
    EXPECT_EQ(out.verdict, sequential.verdict);
    EXPECT_TRUE(same_bits(out.p_value, sequential.p_value));
    EXPECT_TRUE(same_bits(out.statistic, sequential.statistic));
    EXPECT_TRUE(same_bits(out.effect_kpi_units, sequential.effect_kpi_units));
    EXPECT_EQ(out.explanation.iterations_used,
              sequential.explanation.iterations_used);
    EXPECT_STREQ(out.explanation.stop_reason,
                 sequential.explanation.stop_reason);
  }
  par::set_threads(1);
}

TEST(ParallelDeterminism, GramFastPathAgreesWithQrOnCompletePanel) {
  const ElementWindows w = make_windows(default_spec());
  SpatialRegressionParams with_gram;
  with_gram.use_gram_fast_path = true;
  SpatialRegressionParams qr_only = with_gram;
  qr_only.use_gram_fast_path = false;

  RobustSpatialRegression::Forecast fast, slow;
  ASSERT_TRUE(RobustSpatialRegression(with_gram).forecast(w, fast));
  ASSERT_TRUE(RobustSpatialRegression(qr_only).forecast(w, slow));

  EXPECT_EQ(fast.successful_iterations, slow.successful_iterations);
  ASSERT_EQ(fast.median_forecast_before.size(),
            slow.median_forecast_before.size());
  for (std::size_t i = 0; i < fast.median_forecast_before.size(); ++i)
    EXPECT_NEAR(fast.median_forecast_before[i],
                slow.median_forecast_before[i], 1e-9);
  for (std::size_t i = 0; i < fast.median_forecast_after.size(); ++i)
    EXPECT_NEAR(fast.median_forecast_after[i], slow.median_forecast_after[i],
                1e-9);
  EXPECT_NEAR(fast.median_r_squared, slow.median_r_squared, 1e-9);
}

// Toggles obs collection for one test and restores a clean slate after.
struct ObsGuard {
  ObsGuard() {
    obs::Registry::global().reset();
    obs::set_enabled(true);
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::Registry::global().reset();
  }
};

TEST(ParallelDeterminism, CompletePanelTakesGramPathEveryIteration) {
  const ElementWindows w = make_windows(default_spec());
  SpatialRegressionParams params;
  params.n_iterations = 30;
  const RobustSpatialRegression algo(params);

  ObsGuard guard;
  if (!obs::enabled()) GTEST_SKIP() << "observability compiled out";
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(algo.forecast(w, fc));
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("litmus.fit.gram").value(), params.n_iterations);
  EXPECT_EQ(reg.counter("litmus.fit.qr_fallback").value(), 0u);
  EXPECT_EQ(reg.counter("litmus.iterations").value(), params.n_iterations);
}

TEST(ParallelDeterminism, PerSubsetMissingnessForcesQrFallback) {
  ElementWindows w = make_windows(default_spec());
  // Punch holes into one control's before window: subsets that exclude it
  // have more complete rows than the panel, so the Gram solve would be
  // inexact there and must fall back to QR. Subsets containing it still
  // match the panel and keep the fast path.
  for (const std::size_t bin : {5u, 40u, 200u})
    w.control_before[3][bin] = ts::kMissing;

  SpatialRegressionParams params;
  params.n_iterations = 30;
  const RobustSpatialRegression algo(params);

  ObsGuard guard;
  if (!obs::enabled()) GTEST_SKIP() << "observability compiled out";
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(algo.forecast(w, fc));
  auto& reg = obs::Registry::global();
  const std::uint64_t fast = reg.counter("litmus.fit.gram").value();
  const std::uint64_t fallback = reg.counter("litmus.fit.qr_fallback").value();
  EXPECT_GT(fast, 0u);      // iterations sampling control 3
  EXPECT_GT(fallback, 0u);  // iterations skipping control 3
  EXPECT_EQ(fast + fallback, params.n_iterations);

  // The fallback is an implementation detail: results still match the
  // pure-QR run exactly at the bins both produce.
  SpatialRegressionParams qr_only = params;
  qr_only.use_gram_fast_path = false;
  RobustSpatialRegression::Forecast slow;
  ASSERT_TRUE(RobustSpatialRegression(qr_only).forecast(w, slow));
  for (std::size_t i = 0; i < fc.median_forecast_after.size(); ++i)
    EXPECT_NEAR(fc.median_forecast_after[i], slow.median_forecast_after[i],
                1e-9);
}

}  // namespace
}  // namespace litmus::core
