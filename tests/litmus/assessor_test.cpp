#include "litmus/assessor.h"

#include <gtest/gtest.h>

#include <memory>

#include "cellnet/builder.h"
#include "litmus/report.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"

namespace litmus::core {
namespace {

struct Fixture {
  net::Topology topo;
  std::unique_ptr<sim::KpiGenerator> gen;
  std::vector<net::ElementId> rncs;

  // True effect (sigma) applied to the first RNC's subtree at bin 0.
  explicit Fixture(double study_effect_sigma, std::uint64_t seed = 314) {
    topo = net::build_small_region(net::Region::kSoutheast, seed, 6, 6);
    rncs = topo.of_kind(net::ElementKind::kRnc);
    gen = std::make_unique<sim::KpiGenerator>(topo,
                                              sim::GeneratorConfig{.seed = seed});
    if (study_effect_sigma != 0.0) {
      sim::UpstreamEvent ev;
      ev.source = rncs[0];
      ev.start_bin = 0;
      ev.sigma_shift = study_effect_sigma;
      gen->add_factor(std::make_shared<sim::NetworkEventFactor>(
          topo, std::vector<sim::UpstreamEvent>{ev}));
    }
  }

  SeriesProvider provider() {
    return [g = gen.get()](net::ElementId e, kpi::KpiId k, std::int64_t s,
                           std::size_t n) { return g->kpi_series(e, k, s, n); };
  }

  std::vector<net::ElementId> study() const { return {rncs[0]}; }
  std::vector<net::ElementId> controls() const {
    return {rncs.begin() + 1, rncs.end()};
  }
};

TEST(Assessor, DetectsTrueImprovement) {
  Fixture f(+1.5);
  Assessor assessor(f.topo, f.provider());
  const ChangeAssessment a = assessor.assess(
      f.study(), f.controls(), kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_EQ(a.summary.verdict, Verdict::kImprovement);
  ASSERT_EQ(a.per_element.size(), 1u);
  EXPECT_EQ(a.per_element[0].element, f.rncs[0]);
  EXPECT_FALSE(a.per_element[0].outcome.degenerate);
}

TEST(Assessor, NeutralChangeIsNoImpact) {
  Fixture f(0.0);
  Assessor assessor(f.topo, f.provider());
  const ChangeAssessment a = assessor.assess(
      f.study(), f.controls(), kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_EQ(a.summary.verdict, Verdict::kNoImpact);
}

TEST(Assessor, WindowsAlignAroundChangeBin) {
  Fixture f(0.0);
  AssessmentConfig cfg;
  cfg.before_bins = 48;
  cfg.after_bins = 24;
  cfg.guard_bins = 6;
  Assessor assessor(f.topo, f.provider(), cfg);
  const ElementWindows w = assessor.windows_for(
      f.rncs[0], f.controls(), kpi::KpiId::kVoiceRetainability, 100);
  EXPECT_EQ(w.study_before.start_bin(), 52);
  EXPECT_EQ(w.study_before.end_bin(), 100);
  EXPECT_EQ(w.study_after.start_bin(), 106);
  EXPECT_EQ(w.study_after.end_bin(), 130);
  ASSERT_EQ(w.control_before.size(), f.controls().size());
  EXPECT_EQ(w.control_before[0].size(), 48u);
  EXPECT_EQ(w.control_after[0].size(), 24u);
}

TEST(Assessor, RejectsBadConfig) {
  Fixture f(0.0);
  AssessmentConfig cfg;
  cfg.before_bins = 2;
  EXPECT_THROW(Assessor(f.topo, f.provider(), cfg), std::invalid_argument);
  EXPECT_THROW(Assessor(f.topo, nullptr), std::invalid_argument);
}

TEST(Assessor, SelectionVariantPicksControlsOutsideScope) {
  Fixture f(+1.5);
  Assessor assessor(f.topo, f.provider());
  const ChangeAssessment a = assessor.assess_with_selection(
      f.study(), all_of({same_upstream(net::ElementKind::kMsc)}),
      kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_FALSE(a.control_group.empty());
  const auto scope = f.topo.impact_scope(f.rncs[0]);
  for (const auto c : a.control_group) EXPECT_FALSE(scope.contains(c));
  EXPECT_EQ(a.summary.verdict, Verdict::kImprovement);
}

TEST(Assessor, FfaGoWhenNoDegradation) {
  Fixture f(+1.5);
  Assessor assessor(f.topo, f.provider());
  const std::vector<kpi::KpiId> kpis{kpi::KpiId::kVoiceRetainability,
                                     kpi::KpiId::kDataRetainability};
  const FfaDecision d =
      assessor.ffa_decision(f.study(), f.controls(), kpis, 0);
  EXPECT_TRUE(d.go);
  EXPECT_EQ(d.per_kpi.size(), 2u);
  EXPECT_FALSE(d.rationale.empty());
}

TEST(Assessor, FfaNoGoOnDegradation) {
  Fixture f(-1.5);
  Assessor assessor(f.topo, f.provider());
  const std::vector<kpi::KpiId> kpis{kpi::KpiId::kVoiceRetainability};
  const FfaDecision d =
      assessor.ffa_decision(f.study(), f.controls(), kpis, 0);
  EXPECT_FALSE(d.go);
  EXPECT_NE(d.rationale.find("degradation"), std::string::npos);
}

TEST(Report, FormatsContainKeyFacts) {
  Fixture f(+1.5);
  Assessor assessor(f.topo, f.provider());
  const ChangeAssessment a = assessor.assess(
      f.study(), f.controls(), kpi::KpiId::kVoiceRetainability, 0);
  const std::string text = format_assessment(a, f.topo);
  EXPECT_NE(text.find("voice_retainability"), std::string::npos);
  EXPECT_NE(text.find("improvement"), std::string::npos);
  EXPECT_NE(text.find(f.topo.get(f.rncs[0]).name), std::string::npos);

  const std::string line = one_line_summary(a);
  EXPECT_NE(line.find("improvement"), std::string::npos);

  const FfaDecision d = assessor.ffa_decision(
      f.study(), f.controls(),
      std::vector<kpi::KpiId>{kpi::KpiId::kVoiceRetainability}, 0);
  const std::string ffa = format_ffa_decision(d, f.topo);
  EXPECT_NE(ffa.find("GO"), std::string::npos);
}

TEST(Assessor, MultiElementStudyVotes) {
  // Apply the change effect to two RNCs; both should vote improvement.
  net::Topology topo = net::build_small_region(net::Region::kWest, 555, 6, 6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  sim::KpiGenerator gen(topo, {.seed = 555});
  std::vector<sim::UpstreamEvent> evs;
  for (int i = 0; i < 2; ++i) {
    sim::UpstreamEvent ev;
    ev.source = rncs[static_cast<std::size_t>(i)];
    ev.start_bin = 0;
    ev.sigma_shift = 1.5;
    evs.push_back(ev);
  }
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(topo, evs));
  Assessor assessor(topo,
                    [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s,
                           std::size_t n) { return gen.kpi_series(e, k, s, n); });
  const std::vector<net::ElementId> study{rncs[0], rncs[1]};
  const std::vector<net::ElementId> controls(rncs.begin() + 2, rncs.end());
  const ChangeAssessment a =
      assessor.assess(study, controls, kpi::KpiId::kVoiceRetainability, 0);
  EXPECT_EQ(a.summary.verdict, Verdict::kImprovement);
  EXPECT_EQ(a.summary.improvements, 2u);
}

}  // namespace
}  // namespace litmus::core
