#include "litmus/report.h"

#include <gtest/gtest.h>

namespace litmus::core {
namespace {

net::Topology tiny_topo() {
  net::Topology t;
  net::NetworkElement parent;
  parent.id = net::ElementId{1};
  parent.kind = net::ElementKind::kMsc;
  parent.name = "MSC-A";
  t.add(parent);
  for (std::uint32_t i = 2; i <= 4; ++i) {
    net::NetworkElement e;
    e.id = net::ElementId{i};
    e.kind = net::ElementKind::kRnc;
    e.name = "RNC-" + std::to_string(i);
    e.parent = net::ElementId{1};
    t.add(e);
  }
  return t;
}

ChangeAssessment sample_assessment() {
  ChangeAssessment a;
  a.kpi = kpi::KpiId::kVoiceRetainability;
  a.change_bin = 0;
  a.study_group = {net::ElementId{2}, net::ElementId{3}, net::ElementId{4}};
  a.control_group = {net::ElementId{1}};
  AnalysisOutcome improvement;
  improvement.verdict = Verdict::kImprovement;
  improvement.relative = RelativeChange::kIncrease;
  improvement.p_value = 0.0004;
  improvement.effect_kpi_units = 0.011;
  AnalysisOutcome quiet;
  quiet.verdict = Verdict::kNoImpact;
  quiet.p_value = 0.42;
  quiet.effect_kpi_units = 0.0001;
  AnalysisOutcome dead;
  dead.degenerate = true;
  a.per_element = {{net::ElementId{2}, improvement},
                   {net::ElementId{3}, quiet},
                   {net::ElementId{4}, dead}};
  const std::vector<AnalysisOutcome> outcomes{improvement, quiet, dead};
  a.summary = vote(outcomes);
  return a;
}

TEST(Report, OneLineSummaryCountsAndAbstentions) {
  const std::string line = one_line_summary(sample_assessment());
  EXPECT_NE(line.find("voice_retainability"), std::string::npos);
  EXPECT_NE(line.find("improvement"), std::string::npos);
  EXPECT_NE(line.find("1/2 elements"), std::string::npos);
  EXPECT_NE(line.find("1 abstained"), std::string::npos);
}

TEST(Report, AssessmentTableListsEveryElement) {
  const net::Topology t = tiny_topo();
  const std::string text = format_assessment(sample_assessment(), t);
  EXPECT_NE(text.find("RNC-2"), std::string::npos);
  EXPECT_NE(text.find("RNC-3"), std::string::npos);
  EXPECT_NE(text.find("RNC-4"), std::string::npos);
  EXPECT_NE(text.find("(no data)"), std::string::npos);  // degenerate row
  EXPECT_NE(text.find("<0.001"), std::string::npos);     // tiny p formatting
  EXPECT_NE(text.find("+0.011"), std::string::npos);     // signed effect
  EXPECT_NE(text.find("control group: 1"), std::string::npos);
}

TEST(Report, FfaDecisionShowsGoAndNoGo) {
  const net::Topology t = tiny_topo();
  FfaDecision go;
  go.go = true;
  go.rationale = "all clear";
  go.per_kpi = {sample_assessment()};
  const std::string go_text = format_ffa_decision(go, t);
  EXPECT_NE(go_text.find("DECISION: GO"), std::string::npos);
  EXPECT_NE(go_text.find("all clear"), std::string::npos);

  FfaDecision stop;
  stop.go = false;
  stop.rationale = "degradation on voice";
  const std::string stop_text = format_ffa_decision(stop, t);
  EXPECT_NE(stop_text.find("DECISION: NO-GO"), std::string::npos);
}

TEST(Report, ExplainPrintsIterationsUsedAndStopReason) {
  net::Topology t = tiny_topo();
  ChangeAssessment a = sample_assessment();
  VerdictExplanation& x = a.per_element[0].outcome.explanation;
  x.analyzer = "litmus_spatial_regression";
  x.test = "robust_rank_order";
  x.aggregation = "median";
  x.n_controls = 9;
  x.effective_k = 6;
  x.iterations_requested = 25;
  x.iterations_used = 12;
  x.successful_iterations = 12;
  x.adaptive_sampling = true;
  x.stop_reason = "stable-verdict";
  x.alpha = 0.05;
  const std::string text = format_assessment(a, t, /*explain=*/true);
  EXPECT_NE(text.find("sampled k=6 over 12/12 iteration(s) of budget 25"),
            std::string::npos);
  EXPECT_NE(text.find("stop: stable-verdict (saved 13)"), std::string::npos);
}

TEST(Report, ExplainFullBudgetHasNoSavedSuffix) {
  net::Topology t = tiny_topo();
  ChangeAssessment a = sample_assessment();
  VerdictExplanation& x = a.per_element[0].outcome.explanation;
  x.analyzer = "litmus_spatial_regression";
  x.n_controls = 9;
  x.effective_k = 6;
  x.iterations_requested = 25;
  x.iterations_used = 25;
  x.successful_iterations = 25;
  x.adaptive_sampling = false;
  x.stop_reason = "budget-exhausted";
  x.alpha = 0.05;
  const std::string text = format_assessment(a, t, /*explain=*/true);
  EXPECT_NE(text.find("25/25 iteration(s) of budget 25"), std::string::npos);
  EXPECT_NE(text.find("stop: budget-exhausted"), std::string::npos);
  EXPECT_EQ(text.find("saved"), std::string::npos);
}

TEST(Report, ExplainDegenerateAfterSamplingShowsStopReason) {
  net::Topology t = tiny_topo();
  ChangeAssessment a = sample_assessment();
  AnalysisOutcome& o = a.per_element[2].outcome;  // the degenerate row
  o.explanation.analyzer = "litmus_spatial_regression";
  o.explanation.note = "every sampling iteration failed to fit";
  o.explanation.iterations_requested = 25;
  o.explanation.iterations_used = 25;
  o.explanation.successful_iterations = 0;
  o.explanation.stop_reason = "fit-failures";
  const std::string text = format_assessment(a, t, /*explain=*/true);
  EXPECT_NE(text.find("sampling: 0/25 iteration(s) of budget 25"),
            std::string::npos);
  EXPECT_NE(text.find("stop: fit-failures"), std::string::npos);
}

TEST(Report, MissingPValueRendersNa) {
  net::Topology t = tiny_topo();
  ChangeAssessment a = sample_assessment();
  a.per_element[0].outcome.p_value = ts::kMissing;
  a.per_element[0].outcome.effect_kpi_units = ts::kMissing;
  const std::string text = format_assessment(a, t);
  EXPECT_NE(text.find("n/a"), std::string::npos);
}

}  // namespace
}  // namespace litmus::core
