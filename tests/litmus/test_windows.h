// Shared fixtures for analyzer tests: synthetic ElementWindows with a known
// spatial-dependency structure, built directly (not via eval/group_sim) so
// the core tests do not depend on the eval library.
#pragma once

#include <vector>

#include "litmus/analysis.h"
#include "simkit/injection.h"
#include "tsmath/random.h"

namespace litmus::core::testing {

struct WindowSpec {
  std::size_t n_controls = 10;
  std::size_t before = 14 * 24;
  std::size_t after = 14 * 24;
  double study_shift_sigma = 0.0;    ///< injected at the study after bin 0
  double control_shift_sigma = 0.0;  ///< injected at every control
  std::uint64_t seed = 1;
  double shared_weight = 1.0;        ///< shared-factor weight (spatial dep.)
  kpi::KpiId kpi = kpi::KpiId::kVoiceRetainability;
  /// Controls whose index is listed get an extra level change at bin 0.
  std::vector<std::pair<std::size_t, double>> contamination;
};

/// Builds windows where every element is
///   kpi_typical + noise_scale * (w * F(t) + e_i(t))
/// with F a shared AR(1) and e_i element noise — the minimal structure the
/// analyzers rely on.
inline ElementWindows make_windows(const WindowSpec& spec) {
  ts::Rng shared_rng(spec.seed * 1000003);
  const std::size_t total = spec.before + spec.after;
  const std::int64_t start = -static_cast<std::int64_t>(spec.before);

  std::vector<double> shared(total);
  double f = 0.0;
  for (auto& v : shared) {
    f = 0.9 * f + 0.4359 * shared_rng.normal();  // stationary sigma 1
    v = f;
  }

  const kpi::KpiInfo& info = kpi::info(spec.kpi);
  auto make_series = [&](std::uint64_t tag, double inject_sigma,
                         double extra_sigma) {
    ts::Rng rng(spec.seed ^ (tag * 0x9E3779B97F4A7C15ULL));
    ts::TimeSeries s(start, total, 60);
    for (std::size_t i = 0; i < total; ++i) {
      const double latent =
          spec.shared_weight * shared[i] + rng.normal(0.0, 0.8);
      const double sign =
          info.polarity == kpi::Polarity::kHigherIsBetter ? 1.0 : -1.0;
      s[i] = info.typical_value + sign * info.typical_noise * latent;
    }
    if (inject_sigma != 0.0) {
      sim::Injection inj;
      inj.at_bin = 0;
      inj.magnitude_sigma = inject_sigma;
      sim::apply_injection(s, spec.kpi, inj);
    }
    if (extra_sigma != 0.0) {
      sim::Injection inj;
      inj.at_bin = 0;
      inj.magnitude_sigma = extra_sigma;
      sim::apply_injection(s, spec.kpi, inj);
    }
    return s;
  };

  ElementWindows w;
  const ts::TimeSeries study =
      make_series(1, spec.study_shift_sigma, 0.0);
  w.study_before = study.slice_bins(start, 0);
  w.study_after = study.slice_bins(0, static_cast<std::int64_t>(spec.after));
  for (std::size_t c = 0; c < spec.n_controls; ++c) {
    double extra = 0.0;
    for (const auto& [idx, sigma] : spec.contamination)
      if (idx == c) extra = sigma;
    const ts::TimeSeries ctrl =
        make_series(100 + c, spec.control_shift_sigma, extra);
    w.control_before.push_back(ctrl.slice_bins(start, 0));
    w.control_after.push_back(
        ctrl.slice_bins(0, static_cast<std::int64_t>(spec.after)));
  }
  return w;
}

}  // namespace litmus::core::testing
