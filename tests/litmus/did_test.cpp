#include "litmus/did.h"

#include <gtest/gtest.h>

#include "test_windows.h"
#include "tsmath/stats.h"

namespace litmus::core {
namespace {

using testing::WindowSpec;
using testing::make_windows;

TEST(DiD, DetectsStudyOnlyShift) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  const DiDAnalyzer alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict, Verdict::kImprovement);
  EXPECT_GT(o.effect_kpi_units, 0.0);
}

TEST(DiD, CancelsSharedExternalShift) {
  // Same injection in study and every control: relative change is zero.
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  spec.control_shift_sigma = 2.0;
  const DiDAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(DiD, DetectsRelativeGapWhenBothShift) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.5;
  spec.control_shift_sigma = 1.0;
  const DiDAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kImprovement);
}

TEST(DiD, ControlOnlyShiftIsRelativeChange) {
  WindowSpec spec;
  spec.control_shift_sigma = 2.0;  // controls improve, study does not
  const DiDAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kDegradation);
}

TEST(DiD, PairwiseValuesMatchDefinition) {
  // Deterministic miniature: verify equation (1) numerically.
  ElementWindows w;
  w.study_before = ts::TimeSeries(-4, {1.0, 1.0, 1.0, 1.0});
  w.study_after = ts::TimeSeries(0, {3.0, 3.0, 3.0, 3.0});
  w.control_before.push_back(ts::TimeSeries(-4, {2.0, 2.0, 2.0, 2.0}));
  w.control_after.push_back(ts::TimeSeries(0, {2.5, 2.5, 2.5, 2.5}));
  w.control_before.push_back(ts::TimeSeries(-4, {0.0, 0.0, 0.0, 0.0}));
  w.control_after.push_back(ts::TimeSeries(0, {0.0, 0.0, 0.0, 0.0}));
  const DiDAnalyzer alg;
  const std::vector<double> d = alg.pairwise_did(w);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 2.0 - 0.5);
  EXPECT_DOUBLE_EQ(d[1], 2.0 - 0.0);
}

TEST(DiD, MeanAggregationIsBiasedByOneContaminatedControl) {
  // The weakness the paper exploits: one control with a big unrelated shift
  // in the same direction as the study's real improvement masks it.
  WindowSpec spec;
  spec.n_controls = 8;
  spec.study_shift_sigma = 1.0;
  spec.contamination = {{0, 8.0}};  // one control jumps +8 sigma
  const DiDAnalyzer mean_alg;
  const AnalysisOutcome o = mean_alg.assess(make_windows(spec), spec.kpi);
  EXPECT_NE(o.verdict, Verdict::kImprovement);  // masked (FN or flipped)
}

TEST(DiD, MedianAggregationSurvivesContamination) {
  WindowSpec spec;
  spec.n_controls = 8;
  spec.study_shift_sigma = 1.0;
  spec.contamination = {{0, 8.0}};
  DiDParams params;
  params.aggregate = CentralMeasure::kMedian;
  const DiDAnalyzer alg(params);
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kImprovement);
}

TEST(DiD, MedianHRobustToStudyOutlierBins) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  ElementWindows w = make_windows(spec);
  // A few absurd spikes in the study-after window.
  w.study_after[0] = 0.0;
  w.study_after[1] = 0.0;
  DiDParams params;
  params.h = CentralMeasure::kMedian;
  const DiDAnalyzer alg(params);
  EXPECT_EQ(alg.assess(w, spec.kpi).verdict, Verdict::kImprovement);
}

TEST(DiD, ThresholdGatesSmallEffects) {
  WindowSpec spec;
  spec.study_shift_sigma = 0.2;
  spec.shared_weight = 0.0;
  DiDParams params;
  params.threshold_sigma = 0.4;
  const DiDAnalyzer alg(params);
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(DiD, DegenerateWithoutControls) {
  WindowSpec spec;
  spec.n_controls = 0;
  const DiDAnalyzer alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_TRUE(o.degenerate);
}

TEST(DiD, DegenerateOnMismatchedControlLists) {
  WindowSpec spec;
  ElementWindows w = make_windows(spec);
  w.control_after.pop_back();
  const DiDAnalyzer alg;
  EXPECT_TRUE(alg.assess(w, spec.kpi).degenerate);
}

TEST(DiD, PolarityMapsDirection) {
  WindowSpec spec;
  spec.kpi = kpi::KpiId::kDroppedVoiceCallRatio;
  spec.study_shift_sigma = 2.0;  // quality up -> ratio down
  const DiDAnalyzer alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict, Verdict::kImprovement);
  EXPECT_LT(o.effect_kpi_units, 0.0);
}

}  // namespace
}  // namespace litmus::core
