#include "litmus/control_selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cellnet/builder.h"

namespace litmus::core {
namespace {

net::Topology national() {
  net::BuildSpec spec;
  spec.seed = 77;
  return net::NetworkBuilder(spec).build();
}

bool contains(const std::vector<net::ElementId>& v, net::ElementId id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

TEST(Predicates, SameZip) {
  const net::Topology t = national();
  const auto pred = same_zip();
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  bool found_match = false;
  for (const auto a : nodes)
    for (const auto b : nodes) {
      if (a == b) continue;
      if (pred(t, a, b)) {
        EXPECT_EQ(t.get(a).zip, t.get(b).zip);
        found_match = true;
      }
    }
  EXPECT_TRUE(found_match);
}

TEST(Predicates, WithinKm) {
  const net::Topology t = national();
  const auto near = within_km(5.0);
  const auto far = within_km(1e6);
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  const auto a = nodes[0];
  std::size_t near_count = 0, far_count = 0;
  for (const auto b : nodes) {
    if (b == a) continue;
    if (near(t, a, b)) ++near_count;
    if (far(t, a, b)) ++far_count;
  }
  EXPECT_LT(near_count, far_count);
  EXPECT_EQ(far_count, nodes.size() - 1);
}

TEST(Predicates, SameRegionAndTechnology) {
  const net::Topology t = national();
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  const auto bts = t.of_kind(net::ElementKind::kBts);
  ASSERT_FALSE(nodes.empty());
  ASSERT_FALSE(bts.empty());
  EXPECT_FALSE(same_technology()(t, nodes[0], bts[0]));
  EXPECT_TRUE(same_technology()(t, nodes[0], nodes[1]));
  bool cross_region_rejected = false;
  for (const auto b : nodes)
    if (t.get(b).region != t.get(nodes[0]).region &&
        !same_region()(t, nodes[0], b))
      cross_region_rejected = true;
  EXPECT_TRUE(cross_region_rejected);
}

TEST(Predicates, SameParentAndUpstream) {
  const net::Topology t = national();
  const auto rncs = t.of_kind(net::ElementKind::kRnc);
  const auto kids_a = t.children_of(rncs[0]);
  const auto kids_b = t.children_of(rncs[1]);
  ASSERT_GE(kids_a.size(), 2u);
  ASSERT_GE(kids_b.size(), 1u);
  EXPECT_TRUE(same_parent()(t, kids_a[0], kids_a[1]));
  EXPECT_FALSE(same_parent()(t, kids_a[0], kids_b[0]));
  EXPECT_TRUE(
      same_upstream(net::ElementKind::kRnc)(t, kids_a[0], kids_a[1]));
  // Same MSC can hold even across RNCs.
  const auto msc_a = t.ancestor_of_kind(kids_a[0], net::ElementKind::kMsc);
  const auto msc_b = t.ancestor_of_kind(kids_b[0], net::ElementKind::kMsc);
  EXPECT_EQ(same_upstream(net::ElementKind::kMsc)(t, kids_a[0], kids_b[0]),
            msc_a == msc_b);
}

TEST(Predicates, RootHasNoParentMatch) {
  const net::Topology t = national();
  // Two parentless roots never satisfy same_parent.
  std::vector<net::ElementId> roots;
  for (const auto id : t.all())
    if (t.get(id).parent == net::kInvalidElement) roots.push_back(id);
  ASSERT_GE(roots.size(), 2u);
  EXPECT_FALSE(same_parent()(t, roots[0], roots[1]));
}

TEST(Predicates, ConfigurationFamily) {
  const net::Topology t = national();
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  const auto a = nodes[0];
  for (const auto b : nodes) {
    if (b == a) continue;
    if (same_software_version()(t, a, b)) {
      EXPECT_EQ(t.get(a).config.software, t.get(b).config.software);
    }
    if (same_equipment_model()(t, a, b)) {
      EXPECT_EQ(t.get(a).config.equipment_model,
                t.get(b).config.equipment_model);
    }
    if (son_state_matches()(t, a, b)) {
      EXPECT_EQ(t.get(a).config.son_enabled, t.get(b).config.son_enabled);
    }
  }
}

TEST(Predicates, SimilarAntennaTolerance) {
  const net::Topology t = national();
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  const auto loose = similar_antenna(90.0, 90.0);
  const auto tight = similar_antenna(0.0, 0.0);
  std::size_t loose_n = 0, tight_n = 0;
  for (const auto b : nodes) {
    if (b == nodes[0]) continue;
    if (loose(t, nodes[0], b)) ++loose_n;
    if (tight(t, nodes[0], b)) ++tight_n;
  }
  EXPECT_EQ(loose_n, nodes.size() - 1);
  EXPECT_LT(tight_n, loose_n);
}

TEST(Predicates, TerrainAndTraffic) {
  const net::Topology t = national();
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  for (const auto b : nodes) {
    if (b == nodes[0]) continue;
    if (same_terrain()(t, nodes[0], b)) {
      EXPECT_EQ(t.get(nodes[0]).config.terrain, t.get(b).config.terrain);
    }
    if (same_traffic_profile()(t, nodes[0], b)) {
      EXPECT_EQ(t.get(nodes[0]).config.traffic, t.get(b).config.traffic);
    }
  }
}

TEST(Composition, AllOfAnyOfNegate) {
  const net::Topology t = national();
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  const auto a = nodes[0];
  const auto b = nodes[1];
  const auto yes = within_km(1e6);
  const auto no = within_km(0.0);
  EXPECT_TRUE(all_of({yes, yes})(t, a, b));
  EXPECT_FALSE(all_of({yes, no})(t, a, b));
  EXPECT_TRUE(any_of({no, yes})(t, a, b));
  EXPECT_FALSE(any_of({no, no})(t, a, b));
  EXPECT_TRUE(negate(no)(t, a, b));
  EXPECT_FALSE(negate(yes)(t, a, b));
}

TEST(Selection, ExcludesImpactScope) {
  const net::Topology t = national();
  const auto rncs = t.of_kind(net::ElementKind::kRnc);
  const std::vector<net::ElementId> study{t.children_of(rncs[0])[0]};
  const SelectionResult r =
      select_control_group(t, study, within_km(1e9));
  // Nothing in the study tower's impact scope (itself + neighbors) shows up.
  const auto scope = t.impact_scope(study[0]);
  for (const auto c : r.controls) EXPECT_FALSE(scope.contains(c));
  EXPECT_GT(r.excluded_by_scope, 0u);
}

TEST(Selection, OnlySameKindCandidates) {
  const net::Topology t = national();
  const std::vector<net::ElementId> study{
      t.of_kind(net::ElementKind::kRnc)[0]};
  const SelectionResult r =
      select_control_group(t, study, same_technology());
  ASSERT_FALSE(r.controls.empty());
  for (const auto c : r.controls)
    EXPECT_EQ(t.get(c).kind, net::ElementKind::kRnc);
}

TEST(Selection, RespectsMaxSizeAndPrefersClosest) {
  const net::Topology t = national();
  const std::vector<net::ElementId> study{
      t.of_kind(net::ElementKind::kNodeB)[0]};
  SelectionPolicy policy;
  policy.max_size = 5;
  const SelectionResult r =
      select_control_group(t, study, within_km(1e9), policy);
  EXPECT_EQ(r.controls.size(), 5u);
  // The kept five must all be at least as close as any excluded candidate.
  double worst_kept = 0;
  for (const auto c : r.controls)
    worst_kept = std::max(worst_kept,
                          net::haversine_km(t.get(study[0]).location,
                                            t.get(c).location));
  std::size_t closer_excluded = 0;
  for (const auto id : t.of_kind(net::ElementKind::kNodeB)) {
    if (id == study[0] || contains(r.controls, id)) continue;
    if (t.impact_scope(study[0]).contains(id)) continue;
    if (net::haversine_km(t.get(study[0]).location, t.get(id).location) <
        worst_kept - 1e-9)
      ++closer_excluded;
  }
  EXPECT_EQ(closer_excluded, 0u);
}

TEST(Selection, MinSizeFlag) {
  const net::Topology t = national();
  const std::vector<net::ElementId> study{
      t.of_kind(net::ElementKind::kNodeB)[0]};
  SelectionPolicy policy;
  policy.min_size = 10000;  // impossible
  const SelectionResult r =
      select_control_group(t, study, within_km(1e9), policy);
  EXPECT_FALSE(r.meets_min_size);
}

TEST(Selection, EmptyStudyGroupYieldsNothing) {
  const net::Topology t = national();
  const SelectionResult r = select_control_group(t, {}, within_km(1e9));
  EXPECT_TRUE(r.controls.empty());
}

TEST(Selection, MultiElementStudyUnionsScopes) {
  const net::Topology t = national();
  const auto rncs = t.of_kind(net::ElementKind::kRnc);
  const std::vector<net::ElementId> study{rncs[0], rncs[1]};
  const SelectionResult r = select_control_group(t, study, same_technology());
  for (const auto s : study) {
    const auto scope = t.impact_scope(s);
    for (const auto c : r.controls) EXPECT_FALSE(scope.contains(c));
  }
  // The study elements themselves are never controls.
  EXPECT_FALSE(contains(r.controls, rncs[0]));
  EXPECT_FALSE(contains(r.controls, rncs[1]));
}

TEST(Selection, MultiVariatePredicateFromPaper) {
  // "cell towers sharing the common set of upstream RNCs and upstream RNCs
  // with same OS" — Section 3.3's multi-variate example.
  const net::Topology t = national();
  const auto nodes = t.of_kind(net::ElementKind::kNodeB);
  const std::vector<net::ElementId> study{nodes[0]};
  const auto pred = all_of({same_upstream(net::ElementKind::kRnc),
                            same_technology()});
  const SelectionResult r = select_control_group(t, study, pred);
  for (const auto c : r.controls)
    EXPECT_EQ(t.ancestor_of_kind(c, net::ElementKind::kRnc),
              t.ancestor_of_kind(nodes[0], net::ElementKind::kRnc));
}

}  // namespace
}  // namespace litmus::core
