#include "litmus/voting.h"

#include <gtest/gtest.h>

namespace litmus::core {
namespace {

AnalysisOutcome outcome(Verdict v, bool degenerate = false) {
  AnalysisOutcome o;
  o.verdict = v;
  o.degenerate = degenerate;
  return o;
}

TEST(Voting, EmptyInputIsNoImpactZeroConfidence) {
  const VoteSummary s = vote({});
  EXPECT_EQ(s.verdict, Verdict::kNoImpact);
  EXPECT_DOUBLE_EQ(s.confidence, 0.0);
}

TEST(Voting, UnanimousImprovement) {
  const std::vector<AnalysisOutcome> v(3, outcome(Verdict::kImprovement));
  const VoteSummary s = vote(v);
  EXPECT_EQ(s.verdict, Verdict::kImprovement);
  EXPECT_EQ(s.improvements, 3u);
  EXPECT_DOUBLE_EQ(s.confidence, 1.0);
}

TEST(Voting, MajorityWins) {
  const std::vector<AnalysisOutcome> v{
      outcome(Verdict::kDegradation), outcome(Verdict::kDegradation),
      outcome(Verdict::kNoImpact)};
  const VoteSummary s = vote(v);
  EXPECT_EQ(s.verdict, Verdict::kDegradation);
  EXPECT_NEAR(s.confidence, 2.0 / 3.0, 1e-12);
}

TEST(Voting, ImpactBeatsNoImpactTie) {
  // A real impact rarely reaches significance at every element; the tie
  // between one significant improvement and one quiet element resolves to
  // the impact verdict.
  const std::vector<AnalysisOutcome> v{outcome(Verdict::kImprovement),
                                       outcome(Verdict::kNoImpact)};
  EXPECT_EQ(vote(v).verdict, Verdict::kImprovement);
}

TEST(Voting, ContradictoryTieIsNoImpact) {
  const std::vector<AnalysisOutcome> v{outcome(Verdict::kImprovement),
                                       outcome(Verdict::kDegradation)};
  EXPECT_EQ(vote(v).verdict, Verdict::kNoImpact);
}

TEST(Voting, DegeneratesAbstain) {
  const std::vector<AnalysisOutcome> v{
      outcome(Verdict::kImprovement),
      outcome(Verdict::kDegradation, /*degenerate=*/true),
      outcome(Verdict::kDegradation, /*degenerate=*/true)};
  const VoteSummary s = vote(v);
  EXPECT_EQ(s.verdict, Verdict::kImprovement);
  EXPECT_EQ(s.degenerates, 2u);
  EXPECT_EQ(s.degradations, 0u);
  EXPECT_DOUBLE_EQ(s.confidence, 1.0);
}

TEST(Voting, AllDegenerate) {
  const std::vector<AnalysisOutcome> v(
      4, outcome(Verdict::kImprovement, /*degenerate=*/true));
  const VoteSummary s = vote(v);
  EXPECT_EQ(s.verdict, Verdict::kNoImpact);
  EXPECT_EQ(s.degenerates, 4u);
  EXPECT_DOUBLE_EQ(s.confidence, 0.0);
}

TEST(Voting, NoImpactMajorityHolds) {
  const std::vector<AnalysisOutcome> v{
      outcome(Verdict::kNoImpact), outcome(Verdict::kNoImpact),
      outcome(Verdict::kNoImpact), outcome(Verdict::kImprovement)};
  const VoteSummary s = vote(v);
  EXPECT_EQ(s.verdict, Verdict::kNoImpact);
  EXPECT_NEAR(s.confidence, 0.75, 1e-12);
}

TEST(Voting, DegradationBeatsImprovementWhenLarger) {
  const std::vector<AnalysisOutcome> v{
      outcome(Verdict::kImprovement), outcome(Verdict::kDegradation),
      outcome(Verdict::kDegradation)};
  EXPECT_EQ(vote(v).verdict, Verdict::kDegradation);
}

TEST(Voting, CountsAreExact) {
  const std::vector<AnalysisOutcome> v{
      outcome(Verdict::kImprovement), outcome(Verdict::kDegradation),
      outcome(Verdict::kNoImpact),
      outcome(Verdict::kNoImpact, /*degenerate=*/true)};
  const VoteSummary s = vote(v);
  EXPECT_EQ(s.improvements, 1u);
  EXPECT_EQ(s.degradations, 1u);
  EXPECT_EQ(s.no_impacts, 1u);
  EXPECT_EQ(s.degenerates, 1u);
}

}  // namespace
}  // namespace litmus::core
