#include "litmus/study_only.h"

#include <gtest/gtest.h>

#include "test_windows.h"

namespace litmus::core {
namespace {

using testing::WindowSpec;
using testing::make_windows;

TEST(StudyOnly, DetectsInjectedImprovement) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  spec.shared_weight = 0.0;  // no confound
  const StudyOnlyAnalyzer alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict, Verdict::kImprovement);
  EXPECT_LT(o.p_value, 0.01);
  EXPECT_GT(o.effect_kpi_units, 0.0);
}

TEST(StudyOnly, DetectsInjectedDegradation) {
  WindowSpec spec;
  spec.study_shift_sigma = -2.0;
  spec.shared_weight = 0.0;
  const StudyOnlyAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kDegradation);
}

TEST(StudyOnly, PolarityFlipsVerdictForDroppedCalls) {
  WindowSpec spec;
  spec.kpi = kpi::KpiId::kDroppedVoiceCallRatio;
  spec.study_shift_sigma = 2.0;  // quality improvement -> ratio decreases
  spec.shared_weight = 0.0;
  const StudyOnlyAnalyzer alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict, Verdict::kImprovement);
  EXPECT_LT(o.effect_kpi_units, 0.0);  // the raw KPI went down
}

TEST(StudyOnly, QuietSeriesIsNoImpact) {
  WindowSpec spec;
  spec.shared_weight = 0.0;
  const StudyOnlyAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(StudyOnly, FooledByCommonShift) {
  // The defining weakness: an external shift hitting everyone reads as an
  // impact of the change.
  WindowSpec spec;
  spec.study_shift_sigma = 0.0;
  spec.control_shift_sigma = 0.0;
  spec.shared_weight = 0.0;
  WindowSpec confounded = spec;
  confounded.study_shift_sigma = 2.0;  // stands in for the external factor
  const StudyOnlyAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(confounded), spec.kpi).verdict,
            Verdict::kImprovement);  // false positive by construction
}

TEST(StudyOnly, EffectFloorSuppressesTinyShifts) {
  WindowSpec spec;
  spec.study_shift_sigma = 0.1;  // statistically findable, too small to act on
  spec.shared_weight = 0.0;
  spec.before = 3000;
  spec.after = 3000;
  StudyOnlyParams params;
  params.min_effect_sigma = 0.25;
  const StudyOnlyAnalyzer alg(params);
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(StudyOnly, DegenerateOnTooFewPoints) {
  ElementWindows w;
  w.study_before = ts::TimeSeries(0, {0.9, 0.9});
  w.study_after = ts::TimeSeries(2, {0.9, 0.9});
  const StudyOnlyAnalyzer alg;
  const AnalysisOutcome o =
      alg.assess(w, kpi::KpiId::kVoiceRetainability);
  EXPECT_TRUE(o.degenerate);
  EXPECT_EQ(o.verdict, Verdict::kNoImpact);
}

TEST(StudyOnly, IgnoresControlsEntirely) {
  WindowSpec spec;
  spec.control_shift_sigma = 3.0;  // massive control move
  spec.shared_weight = 0.0;
  const StudyOnlyAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

}  // namespace
}  // namespace litmus::core
