// Sharded batch driver tests: the deterministic element partition, and
// the DESIGN.md §15 headline guarantee — assess_change_log_sharded's
// merged report is bit-identical to the unsharded assess_change_log at
// any shard count, with the driver callbacks firing once per shard in
// order.
#include "litmus/batch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"

namespace litmus::core {
namespace {

struct Fixture {
  net::Topology topo;
  std::unique_ptr<sim::KpiGenerator> gen;
  std::vector<net::ElementId> rncs;
  chg::ChangeLog log;

  Fixture() {
    topo = net::build_small_region(net::Region::kWest, 909, 10, 5);
    rncs = topo.of_kind(net::ElementKind::kRnc);
    gen = std::make_unique<sim::KpiGenerator>(
        topo, sim::GeneratorConfig{.seed = 909});
    // A mix of real shifts and placebos spread over time so the merged
    // tallies exercise every counter.
    for (std::size_t i = 0; i < rncs.size(); ++i) {
      const std::int64_t bin = static_cast<std::int64_t>(i) * 2000;
      if (i % 3 == 0) {
        sim::UpstreamEvent ev;
        ev.source = rncs[i];
        ev.start_bin = bin;
        ev.sigma_shift = (i % 6 == 0) ? +1.6 : -1.6;
        gen->add_factor(std::make_shared<sim::NetworkEventFactor>(
            topo, std::vector<sim::UpstreamEvent>{ev}));
      }
      chg::ChangeRecord r;
      r.element = rncs[i];
      r.bin = bin;
      r.type = chg::ChangeType::kConfigChange;
      r.expectation = chg::Expectation::kNoImpact;
      r.target_kpi = kpi::KpiId::kVoiceRetainability;
      log.add(r);
    }
  }

  SeriesProvider provider() {
    return [g = gen.get()](net::ElementId e, kpi::KpiId k, std::int64_t s,
                           std::size_t n) { return g->kpi_series(e, k, s, n); };
  }
};

void expect_reports_bit_identical(const BatchReport& a,
                                  const BatchReport& b) {
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    const BatchItem& x = a.items[i];
    const BatchItem& y = b.items[i];
    EXPECT_EQ(x.record.element.value, y.record.element.value);
    EXPECT_EQ(x.window_clean, y.window_clean);
    EXPECT_EQ(x.conflicts.size(), y.conflicts.size());
    EXPECT_EQ(x.met_expectation, y.met_expectation);
    EXPECT_EQ(x.assessment.summary.verdict, y.assessment.summary.verdict);
    // Bit-level, not approximate: == on doubles is the guarantee.
    EXPECT_EQ(x.assessment.summary.confidence,
              y.assessment.summary.confidence);
    ASSERT_EQ(x.assessment.per_element.size(),
              y.assessment.per_element.size());
    for (std::size_t j = 0; j < x.assessment.per_element.size(); ++j) {
      const auto& p = x.assessment.per_element[j];
      const auto& q = y.assessment.per_element[j];
      EXPECT_EQ(p.element.value, q.element.value);
      EXPECT_EQ(p.outcome.verdict, q.outcome.verdict);
      EXPECT_EQ(p.outcome.degenerate, q.outcome.degenerate);
      EXPECT_EQ(std::memcmp(&p.outcome.p_value, &q.outcome.p_value,
                            sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&p.outcome.effect_kpi_units,
                            &q.outcome.effect_kpi_units, sizeof(double)),
                0);
    }
    ASSERT_EQ(x.assessment.control_group.size(),
              y.assessment.control_group.size());
    for (std::size_t j = 0; j < x.assessment.control_group.size(); ++j)
      EXPECT_EQ(x.assessment.control_group[j].value,
                y.assessment.control_group[j].value);
  }
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.degradations, b.degradations);
  EXPECT_EQ(a.no_impacts, b.no_impacts);
  EXPECT_EQ(a.dirty_windows, b.dirty_windows);
  EXPECT_EQ(a.expectation_misses, b.expectation_misses);
}

TEST(Shard, ShardOfIsAPureFunctionOfTheId) {
  EXPECT_EQ(shard_of(net::ElementId{7}, 0), 0u);
  EXPECT_EQ(shard_of(net::ElementId{7}, 1), 0u);
  EXPECT_EQ(shard_of(net::ElementId{7}, 4), 3u);
  EXPECT_EQ(shard_of(net::ElementId{8}, 4), 0u);
  for (std::uint32_t id = 1; id < 100; ++id)
    for (std::size_t n = 1; n <= 8; ++n)
      EXPECT_LT(shard_of(net::ElementId{id}, n), n);
}

TEST(Shard, PlanShardsPartitionsEveryRecordExactlyOnce) {
  Fixture f;
  for (const std::size_t n : {1u, 2u, 3u, 5u, 16u}) {
    const auto plan = plan_shards(f.log, n);
    ASSERT_EQ(plan.size(), std::max<std::size_t>(n, 1));
    std::vector<bool> seen(f.log.size(), false);
    for (std::size_t s = 0; s < plan.size(); ++s) {
      std::size_t prev = 0;
      bool first = true;
      for (const std::size_t idx : plan[s]) {
        ASSERT_LT(idx, f.log.size());
        EXPECT_FALSE(seen[idx]) << "record " << idx << " in two shards";
        seen[idx] = true;
        if (!first) EXPECT_GT(idx, prev) << "shard order not ascending";
        prev = idx;
        first = false;
        EXPECT_EQ(shard_of(f.log.all()[idx].element, n), s);
      }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
      EXPECT_TRUE(seen[i]) << "record " << i << " unassigned";
  }
}

TEST(Shard, ShardedMergedReportBitIdenticalToUnsharded) {
  Fixture f;
  const BatchReport reference =
      assess_change_log(f.log, f.topo, f.provider());
  for (const std::size_t n : {1u, 2u, 3u, 8u}) {
    const ShardedBatchReport sharded = assess_change_log_sharded(
        f.log, f.topo, f.provider(), n);
    SCOPED_TRACE("shards=" + std::to_string(n));
    expect_reports_bit_identical(sharded.merged, reference);
    ASSERT_EQ(sharded.shards.size(), std::max<std::size_t>(n, 1));
    std::size_t total = 0;
    for (const ShardSummary& s : sharded.shards) total += s.records;
    EXPECT_EQ(total, f.log.size());
  }
}

TEST(Shard, AdaptiveShardedBitIdenticalToUnsharded) {
  // Adaptive-on: early-stop decisions are a pure function of (seed,
  // completed rounds), so any shard count must reproduce the unsharded
  // verdicts AND the per-record iterations-used (surfaced through the
  // merged adaptive tallies and the per-outcome explanations).
  Fixture f;
  BatchConfig cfg;
  cfg.assessment.regression.adaptive_sampling = true;
  const BatchReport reference =
      assess_change_log(f.log, f.topo, f.provider(), cfg);
  EXPECT_TRUE(reference.adaptive_sampling);
  EXPECT_GT(reference.adaptive_iterations_budget, 0u);
  for (const std::size_t n : {1u, 4u}) {
    const ShardedBatchReport sharded =
        assess_change_log_sharded(f.log, f.topo, f.provider(), n, cfg);
    SCOPED_TRACE("shards=" + std::to_string(n));
    expect_reports_bit_identical(sharded.merged, reference);
    EXPECT_EQ(sharded.merged.adaptive_stopped_early,
              reference.adaptive_stopped_early);
    EXPECT_EQ(sharded.merged.adaptive_iterations_used,
              reference.adaptive_iterations_used);
    EXPECT_EQ(sharded.merged.adaptive_iterations_budget,
              reference.adaptive_iterations_budget);
    // Per-record iterations-used survives the shard round-trip.
    for (std::size_t i = 0; i < reference.items.size(); ++i) {
      const auto& p = reference.items[i].assessment.per_element;
      const auto& q = sharded.merged.items[i].assessment.per_element;
      ASSERT_EQ(p.size(), q.size());
      for (std::size_t j = 0; j < p.size(); ++j) {
        EXPECT_EQ(p[j].outcome.explanation.iterations_used,
                  q[j].outcome.explanation.iterations_used);
        EXPECT_STREQ(p[j].outcome.explanation.stop_reason,
                     q[j].outcome.explanation.stop_reason);
      }
    }
    // Shard tallies sum to the merged totals.
    std::size_t stops = 0;
    std::uint64_t used = 0, budget = 0;
    for (const ShardSummary& s : sharded.shards) {
      stops += s.adaptive_stopped_early;
      used += s.adaptive_iterations_used;
      budget += s.adaptive_iterations_budget;
    }
    EXPECT_EQ(stops, reference.adaptive_stopped_early);
    EXPECT_EQ(used, reference.adaptive_iterations_used);
    EXPECT_EQ(budget, reference.adaptive_iterations_budget);
  }
}

TEST(Shard, AdaptiveOffReportMatchesDefaultConfig) {
  // Adaptive-off must remain byte-for-byte the pre-adaptive behavior: a
  // default-config run and an explicit adaptive_sampling=false run are the
  // same code path, and the adaptive tallies stay zero.
  Fixture f;
  BatchConfig off;
  off.assessment.regression.adaptive_sampling = false;
  const BatchReport a = assess_change_log(f.log, f.topo, f.provider());
  const BatchReport b = assess_change_log(f.log, f.topo, f.provider(), off);
  expect_reports_bit_identical(a, b);
  EXPECT_FALSE(a.adaptive_sampling);
  EXPECT_EQ(a.adaptive_stopped_early, 0u);
  EXPECT_EQ(a.adaptive_iterations_used, b.adaptive_iterations_used);
}

TEST(Shard, CallbacksFireOncePerShardInOrder) {
  Fixture f;
  std::vector<std::size_t> started, finished;
  ShardCallbacks cb;
  cb.on_start = [&](std::size_t shard, std::size_t records) {
    started.push_back(shard);
    EXPECT_EQ(records, plan_shards(f.log, 3)[shard].size());
  };
  cb.on_finish = [&](const ShardSummary& s) { finished.push_back(s.shard); };
  (void)assess_change_log_sharded(f.log, f.topo, f.provider(), 3, {}, cb);
  const std::vector<std::size_t> want = {0, 1, 2};
  EXPECT_EQ(started, want);
  EXPECT_EQ(finished, want);
}

TEST(Shard, ShardLocalCachesReportTheirOwnTraffic) {
  Fixture f;
  const ShardedBatchReport sharded =
      assess_change_log_sharded(f.log, f.topo, f.provider(), 2);
  // Every non-empty shard did real work through its own cache: the
  // summaries must carry per-shard stats, not copies of one global.
  for (const ShardSummary& s : sharded.shards) {
    if (s.records == 0) continue;
    EXPECT_GT(s.cache.hits + s.cache.misses, 0u) << "shard " << s.shard;
  }
}

}  // namespace
}  // namespace litmus::core
