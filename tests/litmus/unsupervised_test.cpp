#include "litmus/unsupervised.h"

#include <gtest/gtest.h>

#include "litmus/spatial_regression.h"
#include "test_windows.h"

namespace litmus::core {
namespace {

using testing::WindowSpec;
using testing::make_windows;

TEST(PcaBaseline, DetectsStudyShift) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.5;
  const PcaBaselineAnalyzer alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict, Verdict::kImprovement);
  EXPECT_GT(o.statistic, 2.0);  // residual-energy ratio
}

TEST(PcaBaseline, QuietNullUndetected) {
  WindowSpec spec;
  const PcaBaselineAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(PcaBaseline, SharedShiftStaysInNormalSubspace) {
  // A common move of every column rides the principal component and does
  // not inflate the residual: no detection (this part the detector gets
  // right).
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  spec.control_shift_sigma = 2.0;
  const PcaBaselineAnalyzer alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(PcaBaseline, Fig7cDirectionIsWrong) {
  // The paper's key argument (Section 2.4 / Fig 7(c)): both groups improve
  // absolutely while the study element *relatively degrades*. The detector
  // may fire, but its only direction proxy is the study's absolute shift —
  // so it cannot report the degradation. Litmus can.
  WindowSpec spec;
  spec.study_shift_sigma = 1.0;   // study improves a little...
  spec.control_shift_sigma = 3.0; // ...controls improve a lot
  const PcaBaselineAnalyzer pca;
  const AnalysisOutcome o = pca.assess(make_windows(spec), spec.kpi);
  EXPECT_NE(o.verdict, Verdict::kDegradation);  // the wrong answer, by design

  const RobustSpatialRegression litmus_alg;
  EXPECT_EQ(litmus_alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kDegradation);  // the right answer
}

TEST(PcaBaseline, DegenerateWithoutControls) {
  WindowSpec spec;
  spec.n_controls = 0;
  const PcaBaselineAnalyzer alg;
  EXPECT_TRUE(alg.assess(make_windows(spec), spec.kpi).degenerate);
}

TEST(PcaBaseline, ThresholdControlsSensitivity) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.5;
  PcaBaselineParams loose;
  loose.energy_ratio_threshold = 1e9;  // effectively off
  const PcaBaselineAnalyzer alg(loose);
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

}  // namespace
}  // namespace litmus::core
