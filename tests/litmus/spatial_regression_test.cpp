#include "litmus/spatial_regression.h"

#include <gtest/gtest.h>

#include "test_windows.h"
#include "tsmath/stats.h"

namespace litmus::core {
namespace {

using testing::WindowSpec;
using testing::make_windows;

TEST(SpatialRegression, DetectsStudyImprovement) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  const RobustSpatialRegression alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict, Verdict::kImprovement);
  EXPECT_LT(o.p_value, 0.01);
  EXPECT_FALSE(ts::is_missing(o.fit_r_squared));
}

TEST(SpatialRegression, DetectsStudyDegradation) {
  WindowSpec spec;
  spec.study_shift_sigma = -2.0;
  const RobustSpatialRegression alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kDegradation);
}

TEST(SpatialRegression, CancelsSharedExternalShift) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  spec.control_shift_sigma = 2.0;  // same external move everywhere
  const RobustSpatialRegression alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(SpatialRegression, ControlOnlyShiftIsRelativeChange) {
  WindowSpec spec;
  spec.control_shift_sigma = 2.0;
  const RobustSpatialRegression alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kDegradation);
}

TEST(SpatialRegression, RobustToContaminatedMinority) {
  // Two of ten controls carry a huge unrelated shift in the improvement
  // direction; the paper's mechanism (sampling + median + regression) must
  // still find the study's real improvement, where mean-DiD fails (see
  // did_test.cpp's contamination cases). The true shift is 1.5 sigma: with
  // k=7 > N/2 most subsets contain a contaminated control, whose biased
  // forecast absorbs ~0.75 sigma of the study's shift, and the surviving
  // effect must still clear the 0.25-sigma materiality floor with margin
  // rather than ride its edge.
  WindowSpec spec;
  spec.n_controls = 10;
  spec.study_shift_sigma = 1.5;
  spec.contamination = {{0, 8.0}, {1, 8.0}};
  const RobustSpatialRegression alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kImprovement);
}

TEST(SpatialRegression, QuietNullIsNoImpact) {
  WindowSpec spec;
  const RobustSpatialRegression alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(SpatialRegression, PolarityMapsDirection) {
  WindowSpec spec;
  spec.kpi = kpi::KpiId::kDroppedVoiceCallRatio;
  spec.study_shift_sigma = -2.0;  // quality loss -> ratio increases
  const RobustSpatialRegression alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict, Verdict::kDegradation);
  EXPECT_GT(o.effect_kpi_units, 0.0);
}

TEST(SpatialRegression, ForecastArtifactsAreConsistent) {
  WindowSpec spec;
  spec.study_shift_sigma = 1.5;
  const RobustSpatialRegression alg;
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(alg.forecast(make_windows(spec), fc));
  // k > N/2 (paper requirement).
  EXPECT_GT(fc.effective_k, spec.n_controls / 2);
  EXPECT_LE(fc.effective_k, spec.n_controls);
  EXPECT_GT(fc.successful_iterations, 0u);
  EXPECT_GT(fc.median_r_squared, 0.3);  // strong spatial dependency
  // Forecast difference medians reflect the injected shift.
  const double shift = ts::median(fc.forecast_diff_after) -
                       ts::median(fc.forecast_diff_before);
  const double expected =
      1.5 * kpi::info(spec.kpi).typical_noise;
  EXPECT_NEAR(shift, expected, 0.4 * expected);
}

TEST(SpatialRegression, ForecastTracksSharedFactor) {
  WindowSpec spec;
  const RobustSpatialRegression alg;
  RobustSpatialRegression::Forecast fc;
  const ElementWindows w = make_windows(spec);
  ASSERT_TRUE(alg.forecast(w, fc));
  // The forecast should explain most of the study's variance: the residual
  // (forecast diff) must be materially tighter than the raw series.
  const double raw_sd = ts::stddev(w.study_before.values());
  const double resid_sd = ts::stddev(fc.forecast_diff_before.values());
  EXPECT_LT(resid_sd, 0.8 * raw_sd);
}

TEST(SpatialRegression, DegenerateWithoutControls) {
  WindowSpec spec;
  spec.n_controls = 0;
  const RobustSpatialRegression alg;
  EXPECT_TRUE(alg.assess(make_windows(spec), spec.kpi).degenerate);
}

TEST(SpatialRegression, DegenerateOnShortSeries) {
  WindowSpec spec;
  spec.before = 6;
  spec.after = 6;
  const RobustSpatialRegression alg;
  EXPECT_TRUE(alg.assess(make_windows(spec), spec.kpi).degenerate);
}

TEST(SpatialRegression, DeterministicAcrossRuns) {
  WindowSpec spec;
  spec.study_shift_sigma = 0.7;
  const RobustSpatialRegression alg;
  const ElementWindows w = make_windows(spec);
  const AnalysisOutcome a = alg.assess(w, spec.kpi);
  const AnalysisOutcome b = alg.assess(w, spec.kpi);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_DOUBLE_EQ(a.p_value, b.p_value);
  EXPECT_DOUBLE_EQ(a.effect_kpi_units, b.effect_kpi_units);
}

TEST(SpatialRegression, SmallControlGroupStillWorks) {
  WindowSpec spec;
  spec.n_controls = 3;
  spec.study_shift_sigma = 2.0;
  const RobustSpatialRegression alg;
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kImprovement);
}

TEST(SpatialRegression, HandlesMissingBinsInControls) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  ElementWindows w = make_windows(spec);
  for (std::size_t i = 0; i < 40; ++i) w.control_before[0][i] = ts::kMissing;
  for (std::size_t i = 0; i < 40; ++i) w.control_after[1][i] = ts::kMissing;
  const RobustSpatialRegression alg;
  EXPECT_EQ(alg.assess(w, spec.kpi).verdict, Verdict::kImprovement);
}

TEST(SpatialRegression, EffectFloorGatesTinyShifts) {
  WindowSpec spec;
  spec.study_shift_sigma = 0.1;
  spec.before = 2000;
  spec.after = 2000;
  const RobustSpatialRegression alg;  // default floor 0.25 sigma
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kNoImpact);
}

TEST(SpatialRegression, MeanAggregationKnobChangesForecast) {
  WindowSpec spec;
  spec.n_controls = 10;
  spec.contamination = {{0, 10.0}};
  SpatialRegressionParams median_params;
  SpatialRegressionParams mean_params;
  mean_params.aggregation = ForecastAggregation::kMean;
  RobustSpatialRegression::Forecast med_fc, mean_fc;
  const ElementWindows w = make_windows(spec);
  ASSERT_TRUE(RobustSpatialRegression(median_params).forecast(w, med_fc));
  ASSERT_TRUE(RobustSpatialRegression(mean_params).forecast(w, mean_fc));
  // With contamination present the two aggregations must disagree somewhere.
  bool any_diff = false;
  for (std::size_t i = 0; i < med_fc.median_forecast_after.size(); ++i) {
    const double a = med_fc.median_forecast_after[i];
    const double b = mean_fc.median_forecast_after[i];
    if (!ts::is_missing(a) && !ts::is_missing(b) && a != b) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SpatialRegression, WilcoxonKnobStillDetects) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  SpatialRegressionParams params;
  params.test = ComparisonTest::kWilcoxon;
  const RobustSpatialRegression alg(params);
  EXPECT_EQ(alg.assess(make_windows(spec), spec.kpi).verdict,
            Verdict::kImprovement);
}

TEST(SpatialRegression, AdaptiveStopsEarlyOnClearShift) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  SpatialRegressionParams params;
  params.adaptive_sampling = true;
  const RobustSpatialRegression alg(params);
  const ElementWindows w = make_windows(spec);
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(alg.forecast(w, fc));
  EXPECT_EQ(fc.stop_reason, StopReason::kStableVerdict);
  EXPECT_GE(fc.iterations_attempted, params.min_iterations);
  EXPECT_LT(fc.iterations_attempted, params.n_iterations);
  EXPECT_LE(fc.successful_iterations, fc.iterations_attempted);
  // The early stop must not change the conclusion.
  EXPECT_EQ(alg.assess(w, spec.kpi).verdict, Verdict::kImprovement);
}

TEST(SpatialRegression, AdaptiveOffSpendsFullBudget) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  const RobustSpatialRegression alg;  // adaptive_sampling defaults off
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(alg.forecast(make_windows(spec), fc));
  EXPECT_EQ(fc.iterations_attempted, SpatialRegressionParams{}.n_iterations);
  EXPECT_EQ(fc.stop_reason, StopReason::kBudgetExhausted);
}

// Satellite regression: the explanation reports iterations *attempted*,
// not the configured budget, and names the stop reason.
TEST(SpatialRegression, ExplanationReportsAttemptedIterations) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  const ElementWindows w = make_windows(spec);

  SpatialRegressionParams off;
  const AnalysisOutcome full = RobustSpatialRegression(off).assess(w, spec.kpi);
  EXPECT_FALSE(full.explanation.adaptive_sampling);
  EXPECT_EQ(full.explanation.iterations_requested, off.n_iterations);
  EXPECT_EQ(full.explanation.iterations_used, off.n_iterations);
  EXPECT_STREQ(full.explanation.stop_reason, "budget-exhausted");
  EXPECT_LE(full.explanation.successful_iterations,
            full.explanation.iterations_used);

  SpatialRegressionParams on = off;
  on.adaptive_sampling = true;
  const AnalysisOutcome early = RobustSpatialRegression(on).assess(w, spec.kpi);
  EXPECT_TRUE(early.explanation.adaptive_sampling);
  EXPECT_EQ(early.explanation.iterations_requested, on.n_iterations);
  EXPECT_LT(early.explanation.iterations_used,
            early.explanation.iterations_requested);
  EXPECT_STREQ(early.explanation.stop_reason, "stable-verdict");
  EXPECT_LE(early.explanation.successful_iterations,
            early.explanation.iterations_used);
  EXPECT_EQ(early.verdict, full.verdict);
}

TEST(SpatialRegression, AdaptiveDegenerateReportsNoSampling) {
  WindowSpec spec;
  spec.n_controls = 0;
  SpatialRegressionParams params;
  params.adaptive_sampling = true;
  const AnalysisOutcome o =
      RobustSpatialRegression(params).assess(make_windows(spec), spec.kpi);
  EXPECT_TRUE(o.degenerate);
  EXPECT_EQ(o.explanation.iterations_used, 0u);
  EXPECT_STREQ(o.explanation.stop_reason, "");
}

TEST(SpatialRegression, AdaptiveDeterministicAcrossRuns) {
  WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  SpatialRegressionParams params;
  params.adaptive_sampling = true;
  const RobustSpatialRegression alg(params);
  const ElementWindows w = make_windows(spec);
  RobustSpatialRegression::Forecast a, b;
  ASSERT_TRUE(alg.forecast(w, a));
  ASSERT_TRUE(alg.forecast(w, b));
  EXPECT_EQ(a.iterations_attempted, b.iterations_attempted);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  for (std::size_t i = 0; i < a.median_forecast_after.size(); ++i)
    EXPECT_DOUBLE_EQ(a.median_forecast_after[i], b.median_forecast_after[i]);
}

// Zero-flip property: enabling adaptive sampling never changes the verdict
// across seeds, directions, and the null.
class AdaptiveFlipProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(AdaptiveFlipProperty, VerdictMatchesFullBudget) {
  const auto [seed, sigma] = GetParam();
  WindowSpec spec;
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.study_shift_sigma = sigma;
  const ElementWindows w = make_windows(spec);
  SpatialRegressionParams on;
  on.adaptive_sampling = true;
  const AnalysisOutcome full = RobustSpatialRegression().assess(w, spec.kpi);
  const AnalysisOutcome adaptive =
      RobustSpatialRegression(on).assess(w, spec.kpi);
  EXPECT_EQ(adaptive.verdict, full.verdict)
      << "seed=" << seed << " sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveFlipProperty,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7),
                       ::testing::Values(-2.0, -1.0, 0.0, 1.0, 2.0)));

// Property sweep: detection holds across seeds and both directions.
class DetectionProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DetectionProperty, FindsInjectedShift) {
  const auto [seed, sigma] = GetParam();
  WindowSpec spec;
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.study_shift_sigma = sigma;
  const RobustSpatialRegression alg;
  const AnalysisOutcome o = alg.assess(make_windows(spec), spec.kpi);
  EXPECT_EQ(o.verdict,
            sigma > 0 ? Verdict::kImprovement : Verdict::kDegradation)
      << "seed=" << seed << " sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetectionProperty,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7),
                       ::testing::Values(-2.0, -1.0, 1.0, 2.0)));

}  // namespace
}  // namespace litmus::core
