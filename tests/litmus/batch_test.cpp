#include "litmus/batch.h"

#include <gtest/gtest.h>

#include <memory>

#include "cellnet/builder.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"

namespace litmus::core {
namespace {

struct Fixture {
  net::Topology topo;
  std::unique_ptr<sim::KpiGenerator> gen;
  std::vector<net::ElementId> rncs;
  chg::ChangeLog log;

  Fixture() {
    topo = net::build_small_region(net::Region::kWest, 838, 8, 4);
    rncs = topo.of_kind(net::ElementKind::kRnc);
    gen = std::make_unique<sim::KpiGenerator>(topo,
                                              sim::GeneratorConfig{.seed = 838});
  }

  void add_effect(net::ElementId at, double sigma, std::int64_t bin) {
    sim::UpstreamEvent ev;
    ev.source = at;
    ev.start_bin = bin;
    ev.sigma_shift = sigma;
    gen->add_factor(std::make_shared<sim::NetworkEventFactor>(
        topo, std::vector<sim::UpstreamEvent>{ev}));
  }

  chg::ChangeRecord make_record(net::ElementId at, std::int64_t bin,
                                chg::Expectation expect) {
    chg::ChangeRecord r;
    r.element = at;
    r.bin = bin;
    r.type = chg::ChangeType::kConfigChange;
    r.expectation = expect;
    r.target_kpi = kpi::KpiId::kVoiceRetainability;
    return r;
  }

  SeriesProvider provider() {
    return [g = gen.get()](net::ElementId e, kpi::KpiId k, std::int64_t s,
                           std::size_t n) { return g->kpi_series(e, k, s, n); };
  }
};

TEST(Batch, AssessesEveryRecordWithExpectations) {
  Fixture f;
  // Change 1: a real improvement, expected improvement -> met.
  f.add_effect(f.rncs[0], +1.6, 0);
  f.log.add(f.make_record(f.rncs[0], 0, chg::Expectation::kImprovement));
  // Change 2: neutral, expected improvement -> missed expectation.
  f.log.add(
      f.make_record(f.rncs[1], 1000, chg::Expectation::kImprovement));
  // Change 3: a regression the team expected to be neutral -> missed.
  f.add_effect(f.rncs[2], -1.6, 2000);
  f.log.add(f.make_record(f.rncs[2], 2000, chg::Expectation::kNoImpact));

  const BatchReport report =
      assess_change_log(f.log, f.topo, f.provider());
  ASSERT_EQ(report.items.size(), 3u);
  EXPECT_EQ(report.items[0].assessment.summary.verdict,
            Verdict::kImprovement);
  EXPECT_TRUE(report.items[0].met_expectation);
  EXPECT_EQ(report.items[1].assessment.summary.verdict, Verdict::kNoImpact);
  EXPECT_FALSE(report.items[1].met_expectation);
  EXPECT_EQ(report.items[2].assessment.summary.verdict,
            Verdict::kDegradation);
  EXPECT_FALSE(report.items[2].met_expectation);
  EXPECT_EQ(report.improvements, 1u);
  EXPECT_EQ(report.degradations, 1u);
  EXPECT_EQ(report.no_impacts, 1u);
  EXPECT_EQ(report.expectation_misses, 2u);
}

TEST(Batch, FlagsDirtyWindows) {
  Fixture f;
  // Two changes at the same RNC three days apart: each contaminates the
  // other's window.
  f.log.add(f.make_record(f.rncs[0], 0, chg::Expectation::kNoImpact));
  f.log.add(f.make_record(f.rncs[0], 3 * 24, chg::Expectation::kNoImpact));
  // A lone change far away in time: clean.
  f.log.add(
      f.make_record(f.rncs[1], 5000, chg::Expectation::kNoImpact));

  const BatchReport report =
      assess_change_log(f.log, f.topo, f.provider());
  EXPECT_FALSE(report.items[0].window_clean);
  EXPECT_FALSE(report.items[1].window_clean);
  EXPECT_TRUE(report.items[2].window_clean);
  EXPECT_EQ(report.dirty_windows, 2u);
  EXPECT_EQ(report.items[0].conflicts.size(), 1u);
}

TEST(Batch, EmptyLogEmptyReport) {
  Fixture f;
  const BatchReport report =
      assess_change_log(f.log, f.topo, f.provider());
  EXPECT_TRUE(report.items.empty());
  EXPECT_EQ(report.improvements + report.degradations + report.no_impacts,
            0u);
}

TEST(Batch, FormatContainsKeyRows) {
  Fixture f;
  f.add_effect(f.rncs[0], +1.6, 0);
  f.log.add(f.make_record(f.rncs[0], 0, chg::Expectation::kImprovement));
  const BatchReport report =
      assess_change_log(f.log, f.topo, f.provider());
  const std::string text = format_batch_report(report, f.topo);
  EXPECT_NE(text.find("1 change(s)"), std::string::npos);
  EXPECT_NE(text.find("improvement"), std::string::npos);
  EXPECT_NE(text.find(f.topo.get(f.rncs[0]).name), std::string::npos);
  EXPECT_NE(text.find("clean"), std::string::npos);
}

TEST(Batch, CustomPredicateHonoured) {
  Fixture f;
  f.add_effect(f.rncs[0], +1.6, 0);
  f.log.add(f.make_record(f.rncs[0], 0, chg::Expectation::kImprovement));
  BatchConfig cfg;
  cfg.predicate = all_of({same_upstream(net::ElementKind::kMsc),
                          same_technology()});
  const BatchReport report =
      assess_change_log(f.log, f.topo, f.provider(), cfg);
  ASSERT_EQ(report.items.size(), 1u);
  for (const auto c : report.items[0].assessment.control_group)
    EXPECT_EQ(f.topo.ancestor_of_kind(c, net::ElementKind::kMsc),
              f.topo.ancestor_of_kind(f.rncs[0], net::ElementKind::kMsc));
}

}  // namespace
}  // namespace litmus::core
