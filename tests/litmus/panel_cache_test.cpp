#include "litmus/panel_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstring>
#include <vector>

#include "litmus/spatial_regression.h"
#include "parallel/pool.h"
#include "test_windows.h"
#include "tsmath/matrix.h"
#include "tsmath/random.h"

namespace litmus::core {
namespace {

ts::Matrix random_design(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  ts::Rng rng(seed);
  ts::Matrix m(rows, cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) m(r, c) = rng.normal();
  return m;
}

TEST(PanelKeyTest, FingerprintIsContentDeterministic) {
  const ts::Matrix a = random_design(64, 6, 1);
  ts::Matrix b = random_design(64, 6, 1);
  EXPECT_EQ(fingerprint_design(a), fingerprint_design(b));
  // One changed value, one changed bin of missingness, one changed shape —
  // each must move the key.
  b(10, 3) += 1e-9;
  EXPECT_NE(fingerprint_design(a), fingerprint_design(b));
  ts::Matrix c = random_design(64, 6, 1);
  c(0, 0) = ts::kMissing;
  EXPECT_NE(fingerprint_design(a), fingerprint_design(c));
  EXPECT_NE(fingerprint_design(a),
            fingerprint_design(random_design(66, 6, 1)));
}

TEST(PanelCacheTest, HitsMissesAndSharing) {
  PanelCache cache(8u << 20);
  const ts::Matrix x = random_design(128, 8, 7);
  const PanelKey key = fingerprint_design(x);
  int builds = 0;
  auto build = [&] {
    ++builds;
    return ts::GramPanel::build(x);
  };
  const auto p1 = cache.get_or_build(key, build);
  const auto p2 = cache.get_or_build(key, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(p1.get(), p2.get());  // literally the same panel
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, p1->bytes());
}

TEST(PanelCacheTest, ZeroCapacityDisablesStorage) {
  PanelCache cache(0);
  const ts::Matrix x = random_design(64, 4, 3);
  const PanelKey key = fingerprint_design(x);
  int builds = 0;
  auto build = [&] {
    ++builds;
    return ts::GramPanel::build(x);
  };
  const auto p1 = cache.get_or_build(key, build);
  const auto p2 = cache.get_or_build(key, build);
  ASSERT_TRUE(p1 && p2);
  EXPECT_TRUE(p1->ok());
  EXPECT_EQ(builds, 2);  // every call builds
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(PanelCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Budget sized for a couple of panels per shard slice; inserting many
  // distinct panels must evict older ones rather than grow unbounded, and
  // handles held by callers must survive their entry's eviction.
  const ts::Matrix probe = random_design(256, 16, 0);
  const std::size_t one = ts::GramPanel::build(probe).bytes();
  PanelCache cache(one * 16);
  std::vector<PanelCache::PanelPtr> held;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const ts::Matrix x = random_design(256, 16, 1000 + i);
    held.push_back(cache.get_or_build(fingerprint_design(x),
                                      [&] { return ts::GramPanel::build(x); }));
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 24u);
  // 24 equal-size panels against a 16-panel budget over 8 shards: some
  // shard received three or more (pigeonhole) and had to evict.
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, one * 16);
  // Evicted panels stay alive through the shared_ptr we kept.
  for (const auto& p : held) {
    ASSERT_TRUE(p);
    EXPECT_TRUE(p->ok());
    EXPECT_EQ(p->panel_rows(), 256u);
  }
}

TEST(PanelCacheTest, ShrinkingCapacityEvictsAndClearDropsAll) {
  PanelCache cache(64u << 20);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const ts::Matrix x = random_design(128, 8, 2000 + i);
    (void)cache.get_or_build(fingerprint_design(x),
                             [&] { return ts::GramPanel::build(x); });
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  cache.set_capacity_bytes(1);  // almost nothing fits
  EXPECT_LT(cache.stats().entries, 8u);
  cache.clear();
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.misses, 8u);  // counters survive clear()
}

// The cache under the parallel pool: many workers race get_or_build over a
// small key space with a budget tight enough to force concurrent eviction.
// Every returned panel must be valid and bit-identical to a fresh build of
// its design.
TEST(PanelCacheTest, ConcurrentGetOrBuildUnderThreadPool) {
  constexpr std::size_t kDesigns = 6;
  std::vector<ts::Matrix> designs;
  std::vector<PanelKey> keys;
  std::vector<ts::GramPanel> fresh;
  for (std::size_t i = 0; i < kDesigns; ++i) {
    designs.push_back(random_design(192, 12, 3000 + i));
    keys.push_back(fingerprint_design(designs[i]));
    fresh.push_back(ts::GramPanel::build(designs[i]));
  }
  PanelCache cache(fresh[0].bytes() * 3);  // forces evictions while racing

  const std::size_t prev_threads = par::threads();
  par::set_threads(4);
  constexpr std::size_t kOps = 256;
  std::atomic<std::size_t> bad{0};
  par::parallel_chunks(
      kOps, par::plan_chunks(kOps),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t op = begin; op < end; ++op) {
          const std::size_t i = (op * 2654435761u) % kDesigns;
          const auto p = cache.get_or_build(keys[i], [&] {
            return ts::GramPanel::build(designs[i]);
          });
          if (!p || !p->ok() || p->panel_rows() != fresh[i].panel_rows() ||
              p->cols() != fresh[i].cols() || p->bytes() != fresh[i].bytes())
            bad.fetch_add(1);
        }
      });
  par::set_threads(prev_threads);

  EXPECT_EQ(bad.load(), 0u);
  const auto s = cache.stats();
  // Every operation resolves to exactly one hit or one miss, whatever the
  // interleaving (hit counts themselves are timing-dependent under this
  // deliberately thrashing budget — the deterministic hit behavior is
  // covered by HitsMissesAndSharing).
  EXPECT_EQ(s.hits + s.misses, kOps);
  EXPECT_GT(s.entries, 0u);
  EXPECT_EQ(s.bytes, s.entries * fresh[0].bytes());  // equal-size panels
}

void expect_bit_identical(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.start_bin(), b.start_bin());
  if (!a.empty())
    EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                          a.size() * sizeof(double)),
              0);
}

// The determinism contract of DESIGN.md §10: verdicts and forecasts are
// bit-identical with the cache on (warm or cold) and off.
TEST(PanelCacheTest, CacheOnAndOffProduceBitIdenticalResults) {
  testing::WindowSpec spec;
  spec.n_controls = 12;
  spec.seed = 33;
  const ElementWindows w = testing::make_windows(spec);
  const RobustSpatialRegression alg;

  PanelCache& cache = PanelCache::global();
  const std::size_t prev_capacity = cache.capacity_bytes();
  cache.set_capacity_bytes(0);  // off
  RobustSpatialRegression::Forecast off;
  ASSERT_TRUE(alg.forecast(w, off));
  const AnalysisOutcome off_outcome =
      alg.assess(w, kpi::KpiId::kVoiceRetainability);

  cache.set_capacity_bytes(32u << 20);  // on: first run cold, second warm
  cache.clear();
  for (int run = 0; run < 2; ++run) {
    RobustSpatialRegression::Forecast on;
    ASSERT_TRUE(alg.forecast(w, on));
    expect_bit_identical(off.median_forecast_before, on.median_forecast_before);
    expect_bit_identical(off.median_forecast_after, on.median_forecast_after);
    expect_bit_identical(off.forecast_diff_before, on.forecast_diff_before);
    expect_bit_identical(off.forecast_diff_after, on.forecast_diff_after);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(off.median_r_squared),
              std::bit_cast<std::uint64_t>(on.median_r_squared));
    EXPECT_EQ(off.successful_iterations, on.successful_iterations);
    const AnalysisOutcome on_outcome =
        alg.assess(w, kpi::KpiId::kVoiceRetainability);
    EXPECT_EQ(on_outcome.verdict, off_outcome.verdict);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(on_outcome.p_value),
              std::bit_cast<std::uint64_t>(off_outcome.p_value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(on_outcome.effect_kpi_units),
              std::bit_cast<std::uint64_t>(off_outcome.effect_kpi_units));
  }
  EXPECT_GT(cache.stats().hits, 0u);  // the warm runs actually hit

  cache.clear();
  cache.set_capacity_bytes(prev_capacity);
}

// Two study elements regressing onto the same control panel share one
// build: the second element's panel comes from the cache.
TEST(PanelCacheTest, StudyElementsSharingControlsShareOnePanel) {
  testing::WindowSpec spec;
  spec.n_controls = 10;
  spec.seed = 5;
  const ElementWindows first = testing::make_windows(spec);
  spec.seed = 6;  // different study series...
  ElementWindows second = testing::make_windows(spec);
  second.control_before = first.control_before;  // ...same control panel
  second.control_after = first.control_after;

  PanelCache& cache = PanelCache::global();
  const std::size_t prev_capacity = cache.capacity_bytes();
  cache.set_capacity_bytes(32u << 20);
  cache.clear();
  const auto base = cache.stats();

  const RobustSpatialRegression alg;
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(alg.forecast(first, fc));
  ASSERT_TRUE(alg.forecast(second, fc));

  const auto s = cache.stats();
  // Only the before-window design is Gram-built, so the two forecasts make
  // exactly one miss (the first build of the shared panel) and one hit.
  EXPECT_EQ(s.misses - base.misses, 1u);
  EXPECT_GE(s.hits - base.hits, 1u);

  cache.clear();
  cache.set_capacity_bytes(prev_capacity);
}

}  // namespace
}  // namespace litmus::core
