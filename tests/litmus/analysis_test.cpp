#include "litmus/analysis.h"

#include <gtest/gtest.h>

namespace litmus::core {
namespace {

TEST(VerdictFrom, NoChangeIsAlwaysNoImpact) {
  EXPECT_EQ(verdict_from(RelativeChange::kNoChange,
                         kpi::Polarity::kHigherIsBetter),
            Verdict::kNoImpact);
  EXPECT_EQ(verdict_from(RelativeChange::kNoChange,
                         kpi::Polarity::kLowerIsBetter),
            Verdict::kNoImpact);
}

TEST(VerdictFrom, HigherIsBetterMapping) {
  EXPECT_EQ(verdict_from(RelativeChange::kIncrease,
                         kpi::Polarity::kHigherIsBetter),
            Verdict::kImprovement);
  EXPECT_EQ(verdict_from(RelativeChange::kDecrease,
                         kpi::Polarity::kHigherIsBetter),
            Verdict::kDegradation);
}

TEST(VerdictFrom, LowerIsBetterMapping) {
  // A dropped-call-ratio increase is a degradation.
  EXPECT_EQ(verdict_from(RelativeChange::kIncrease,
                         kpi::Polarity::kLowerIsBetter),
            Verdict::kDegradation);
  EXPECT_EQ(verdict_from(RelativeChange::kDecrease,
                         kpi::Polarity::kLowerIsBetter),
            Verdict::kImprovement);
}

TEST(Analysis, EnumNames) {
  EXPECT_STREQ(to_string(RelativeChange::kNoChange), "no_change");
  EXPECT_STREQ(to_string(RelativeChange::kIncrease), "increase");
  EXPECT_STREQ(to_string(Verdict::kImprovement), "improvement");
  EXPECT_STREQ(to_string(Verdict::kDegradation), "degradation");
  EXPECT_STREQ(to_string(Verdict::kNoImpact), "no_impact");
}

TEST(Analysis, DefaultOutcomeIsDegenerateFree) {
  const AnalysisOutcome o;
  EXPECT_EQ(o.verdict, Verdict::kNoImpact);
  EXPECT_FALSE(o.degenerate);
  EXPECT_TRUE(ts::is_missing(o.p_value));
}

}  // namespace
}  // namespace litmus::core
