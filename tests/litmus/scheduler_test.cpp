#include "litmus/scheduler.h"

#include <gtest/gtest.h>

#include "simkit/clock.h"

namespace litmus::core {
namespace {

TEST(Scheduler, AprilWorseThanWinterInNortheast) {
  const ChangeScheduler sched(net::Region::kNortheast, {});
  const WindowScore winter =
      sched.score(net::kInvalidElement, sim::bin_at(0, 40));   // February
  const WindowScore april =
      sched.score(net::kInvalidElement, sim::bin_at(0, 105));  // mid-April
  EXPECT_GT(april.foliage_drift_sigma, winter.foliage_drift_sigma + 0.3);
  EXPECT_GT(april.penalty, winter.penalty);
}

TEST(Scheduler, SoutheastHasNoFoliagePenalty) {
  const ChangeScheduler sched(net::Region::kSoutheast, {});
  const WindowScore april =
      sched.score(net::kInvalidElement, sim::bin_at(0, 105));
  EXPECT_DOUBLE_EQ(april.foliage_drift_sigma, 0.0);
}

TEST(Scheduler, HolidayOverlapPenalized) {
  sim::HolidayWindow holiday;
  holiday.start_bin = sim::bin_at(0, 355);
  holiday.end_bin = sim::bin_at(1, 3);
  holiday.region = net::Region::kSoutheast;
  const ChangeScheduler sched(net::Region::kSoutheast, {holiday});
  const WindowScore christmas =
      sched.score(net::kInvalidElement, sim::bin_at(0, 358));
  const WindowScore summer =
      sched.score(net::kInvalidElement, sim::bin_at(0, 200));
  EXPECT_GT(christmas.holiday_overlap, 0.2);
  EXPECT_DOUBLE_EQ(summer.holiday_overlap, 0.0);
  EXPECT_GT(christmas.penalty, summer.penalty);
}

TEST(Scheduler, HolidayOtherRegionIgnored) {
  sim::HolidayWindow holiday;
  holiday.start_bin = 0;
  holiday.end_bin = sim::bin_at(0, 30);
  holiday.region = net::Region::kWest;
  const ChangeScheduler sched(net::Region::kSoutheast, {holiday});
  EXPECT_DOUBLE_EQ(
      sched.score(net::kInvalidElement, sim::bin_at(0, 15)).holiday_overlap,
      0.0);
}

TEST(Scheduler, ConflictingPlannedChangesCounted) {
  net::Topology topo;
  net::NetworkElement rnc;
  rnc.id = net::ElementId{1};
  rnc.kind = net::ElementKind::kRnc;
  topo.add(rnc);
  net::NetworkElement nb;
  nb.id = net::ElementId{2};
  nb.kind = net::ElementKind::kNodeB;
  nb.parent = net::ElementId{1};
  topo.add(nb);

  chg::ChangeLog planned;
  chg::ChangeRecord other;
  other.element = net::ElementId{2};
  other.bin = sim::bin_at(0, 202);
  planned.add(other);

  const ChangeScheduler sched(net::Region::kSoutheast, {}, &topo, &planned);
  const WindowScore clashing =
      sched.score(net::ElementId{1}, sim::bin_at(0, 200));
  const WindowScore clear =
      sched.score(net::ElementId{1}, sim::bin_at(0, 100));
  EXPECT_EQ(clashing.conflicting_changes, 1u);
  EXPECT_EQ(clear.conflicting_changes, 0u);
  EXPECT_GT(clashing.penalty, clear.penalty);
}

TEST(Scheduler, RecommendReturnsSortedBest) {
  sim::HolidayWindow holiday;
  holiday.start_bin = sim::bin_at(0, 180);
  holiday.end_bin = sim::bin_at(0, 210);
  const ChangeScheduler sched(net::Region::kNortheast, {holiday});
  const auto top = sched.recommend(net::kInvalidElement, sim::bin_at(0, 0),
                                   sim::bin_at(0, 364), 5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_LE(top[i - 1].penalty, top[i].penalty);
  // The best windows in the Northeast sit in deep winter or mid-summer
  // plateau — never on the April ramp or inside the holiday.
  for (const auto& w : top) {
    const int doy = sim::day_of_year(w.change_bin);
    EXPECT_FALSE(doy >= 95 && doy <= 130) << "April ramp picked: " << doy;
    EXPECT_LT(w.holiday_overlap, 0.05);
  }
}

TEST(Scheduler, RationaleMentionsDrivers) {
  sim::HolidayWindow holiday;
  holiday.start_bin = sim::bin_at(0, 355);
  holiday.end_bin = sim::bin_at(1, 5);
  const ChangeScheduler sched(net::Region::kNortheast, {holiday});
  const WindowScore s =
      sched.score(net::kInvalidElement, sim::bin_at(0, 358));
  EXPECT_NE(s.rationale.find("holiday"), std::string::npos);
  EXPECT_NE(s.rationale.find("foliage"), std::string::npos);
}

}  // namespace
}  // namespace litmus::core
