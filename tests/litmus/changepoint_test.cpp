#include "litmus/changepoint.h"

#include <gtest/gtest.h>

#include "test_windows.h"
#include "tsmath/random.h"

namespace litmus::core {
namespace {

ts::TimeSeries shifted_series(std::size_t n, std::int64_t shift_at,
                              double delta, double noise,
                              std::uint64_t seed) {
  ts::Rng rng(seed);
  ts::TimeSeries s(0, n, 60);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t b = static_cast<std::int64_t>(i);
    s[i] = rng.normal(0.0, noise) + (b >= shift_at ? delta : 0.0);
  }
  return s;
}

TEST(ChangePoint, LocatesCleanLevelShift) {
  const ts::TimeSeries s = shifted_series(200, 120, 3.0, 0.5, 1);
  const ChangePoint cp = locate_level_shift(s);
  ASSERT_TRUE(cp.found);
  EXPECT_NEAR(static_cast<double>(cp.bin), 120.0, 3.0);
  EXPECT_NEAR(cp.shift, 3.0, 0.4);
  EXPECT_GT(cp.score, 0.5);
}

TEST(ChangePoint, LocatesDownShift) {
  const ts::TimeSeries s = shifted_series(200, 60, -2.0, 0.5, 2);
  const ChangePoint cp = locate_level_shift(s);
  ASSERT_TRUE(cp.found);
  EXPECT_NEAR(static_cast<double>(cp.bin), 60.0, 3.0);
  EXPECT_LT(cp.shift, -1.5);
}

TEST(ChangePoint, StableSeriesNotFlagged) {
  const ts::TimeSeries s = shifted_series(200, 1000, 0.0, 0.5, 3);
  EXPECT_FALSE(locate_level_shift(s).found);
}

TEST(ChangePoint, RobustToOutliers) {
  ts::TimeSeries s = shifted_series(200, 130, 2.0, 0.5, 4);
  s[20] = 1e6;
  s[70] = -1e6;
  const ChangePoint cp = locate_level_shift(s);
  ASSERT_TRUE(cp.found);
  EXPECT_NEAR(static_cast<double>(cp.bin), 130.0, 4.0);
}

TEST(ChangePoint, HandlesMissingBins) {
  ts::TimeSeries s = shifted_series(200, 100, 2.5, 0.5, 5);
  for (std::size_t i = 40; i < 60; ++i) s[i] = ts::kMissing;
  const ChangePoint cp = locate_level_shift(s);
  ASSERT_TRUE(cp.found);
  EXPECT_NEAR(static_cast<double>(cp.bin), 100.0, 4.0);
}

TEST(ChangePoint, TooShortNotFound) {
  const ts::TimeSeries s = shifted_series(10, 5, 3.0, 0.1, 6);
  EXPECT_FALSE(locate_level_shift(s, /*min_segment=*/6).found);
}

TEST(ChangePoint, MinSegmentExcludesEdges) {
  // A "shift" in the last three points must not be reported when each
  // segment needs at least 10 observations.
  ts::TimeSeries s = shifted_series(60, 57, 5.0, 0.3, 7);
  const ChangePoint cp = locate_level_shift(s, /*min_segment=*/10);
  if (cp.found) {
    EXPECT_LE(cp.bin, 50);
  }
}

TEST(ChangePoint, LocatesRelativeChangeFromForecast) {
  // Full pipeline: injected study shift at bin 0; the locator should place
  // the onset of the forecast-difference shift at ~bin 0.
  testing::WindowSpec spec;
  spec.study_shift_sigma = 2.0;
  spec.seed = 8;
  const RobustSpatialRegression alg;
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(alg.forecast(testing::make_windows(spec), fc));
  const ChangePoint cp = locate_relative_change(fc);
  ASSERT_TRUE(cp.found);
  EXPECT_NEAR(static_cast<double>(cp.bin), 0.0, 12.0);
  EXPECT_GT(cp.shift, 0.0);
}

TEST(ChangePoint, NoRelativeChangeNotFlagged) {
  testing::WindowSpec spec;
  spec.seed = 9;
  const RobustSpatialRegression alg;
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(alg.forecast(testing::make_windows(spec), fc));
  EXPECT_FALSE(locate_relative_change(fc).found);
}

TEST(ChangePoint, LocatesMidAfterWindowOnset) {
  // The shift starts halfway through the after window (a storm two days in,
  // not the change itself): the locator should say so.
  testing::WindowSpec spec;
  spec.seed = 10;
  core::ElementWindows w = testing::make_windows(spec);
  const double delta = 2.0 * kpi::info(spec.kpi).typical_noise;
  w.study_after.add_level(168, w.study_after.end_bin(), delta);
  const RobustSpatialRegression alg;
  RobustSpatialRegression::Forecast fc;
  ASSERT_TRUE(alg.forecast(w, fc));
  const ChangePoint cp = locate_relative_change(fc);
  ASSERT_TRUE(cp.found);
  EXPECT_NEAR(static_cast<double>(cp.bin), 168.0, 20.0);
}


TEST(ShiftShape, LevelShiftClassifiedLevel) {
  const ts::TimeSeries s = shifted_series(200, 100, 3.0, 0.4, 21);
  const ChangePoint cp = locate_level_shift(s);
  ASSERT_TRUE(cp.found);
  EXPECT_EQ(classify_shift(s, cp), ShiftShape::kLevel);
}

TEST(ShiftShape, RampClassifiedRamp) {
  ts::Rng rng(22);
  ts::TimeSeries s(0, 240u, 60);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double ramp =
        i > 100 ? 4.0 * static_cast<double>(i - 100) / 140.0 : 0.0;
    s[i] = rng.normal(0.0, 0.4) + ramp;
  }
  const ChangePoint cp = locate_level_shift(s);
  ASSERT_TRUE(cp.found);
  EXPECT_EQ(classify_shift(s, cp), ShiftShape::kRamp);
}

TEST(ShiftShape, DegenerateDefaultsToLevel) {
  const ts::TimeSeries s = shifted_series(30, 1000, 0.0, 0.4, 23);
  ChangePoint not_found;
  EXPECT_EQ(classify_shift(s, not_found), ShiftShape::kLevel);
  EXPECT_STREQ(to_string(ShiftShape::kLevel), "level");
  EXPECT_STREQ(to_string(ShiftShape::kRamp), "ramp");
}

}  // namespace
}  // namespace litmus::core
