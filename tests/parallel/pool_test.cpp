#include "parallel/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/workspace.h"

namespace litmus::par {
namespace {

TEST(Pool, ThreadsResolutionAndOverride) {
  set_threads(3);
  EXPECT_EQ(threads(), 3u);
  set_threads(0);
  EXPECT_GE(threads(), 1u);
  set_threads(1);
}

TEST(Pool, ParallelForVisitsEveryIndexOnce) {
  for (const std::size_t n_threads : {1u, 2u, 5u}) {
    set_threads(n_threads);
    std::vector<std::atomic<int>> hits(101);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  set_threads(1);
}

TEST(Pool, ChunksAreContiguousAscendingAndCoverEverything) {
  set_threads(4);
  const std::size_t n = 103;
  const std::size_t chunks = plan_chunks(n);
  EXPECT_GE(chunks, 1u);
  EXPECT_LE(chunks, 4u);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks);
  parallel_chunks(n, chunks,
                  [&](std::size_t c, std::size_t begin, std::size_t end) {
                    ranges[c] = {begin, end};
                  });
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, n);
  for (std::size_t c = 1; c < chunks; ++c)
    EXPECT_EQ(ranges[c].first, ranges[c - 1].second);
  set_threads(1);
}

TEST(Pool, ChunkPartitionDependsOnlyOnInputs) {
  // The same (n_items, n_chunks) must give the same slices regardless of
  // the configured thread count — the determinism contract's foundation.
  const std::size_t n = 57, chunks = 3;
  std::vector<std::pair<std::size_t, std::size_t>> a(chunks), b(chunks);
  set_threads(8);
  parallel_chunks(n, chunks, [&](std::size_t c, std::size_t lo,
                                 std::size_t hi) { a[c] = {lo, hi}; });
  set_threads(1);
  parallel_chunks(n, chunks, [&](std::size_t c, std::size_t lo,
                                 std::size_t hi) { b[c] = {lo, hi}; });
  EXPECT_EQ(a, b);
}

TEST(Pool, NestedParallelismRunsInlineWithoutDeadlock) {
  set_threads(4);
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_inline{false};
  parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    if (plan_chunks(100) == 1) saw_inline.store(true);
    parallel_for(10, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 80);
  EXPECT_TRUE(saw_inline.load());
  EXPECT_FALSE(in_parallel_region());
  set_threads(1);
}

TEST(Pool, ExceptionsPropagateToCaller) {
  set_threads(4);
  EXPECT_THROW(parallel_for(64,
                            [](std::size_t i) {
                              if (i == 13)
                                throw std::runtime_error("chunk failed");
                            }),
               std::runtime_error);
  // The pool survives a failed run.
  std::atomic<int> ok{0};
  parallel_for(16, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 16);
  set_threads(1);
}

TEST(Pool, ZeroItemsIsANoOp) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(plan_chunks(0), 0u);
}

TEST(Workspace, ReferencesSurviveSlotGrowth) {
  // Hot loops hold several slot references at once (e.g. pool + cols in
  // the sampling loop), so creating a later slot must not relocate an
  // earlier one.
  Workspace ws;
  std::vector<std::size_t>& first = ws.indices(0);
  std::vector<double>& d_first = ws.doubles(0);
  first.assign(3, 42);
  d_first.assign(2, 0.5);
  for (std::size_t slot = 1; slot < 64; ++slot) {
    ws.indices(slot);
    ws.doubles(slot);
  }
  EXPECT_EQ(&first, &ws.indices(0));
  EXPECT_EQ(&d_first, &ws.doubles(0));
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[2], 42u);
  first.push_back(7);  // writing through the old reference is still valid
  EXPECT_EQ(ws.indices(0).back(), 7u);
}

TEST(Workspace, SlotsPersistAndAreThreadLocal) {
  Workspace& ws = this_thread_workspace();
  ws.doubles(0).assign(4, 1.5);
  EXPECT_EQ(&ws, &this_thread_workspace());
  EXPECT_EQ(this_thread_workspace().doubles(0).size(), 4u);
  ws.indices(2).assign(3, 7);
  EXPECT_EQ(ws.indices(2).size(), 3u);

  set_threads(4);
  // Worker threads see their own workspaces, never the caller's buffers.
  std::atomic<int> distinct{0};
  parallel_chunks(4, 4, [&](std::size_t, std::size_t, std::size_t) {
    Workspace& local = this_thread_workspace();
    if (&local != &ws) distinct.fetch_add(1);
    local.doubles(0).push_back(1.0);
  });
  EXPECT_GE(distinct.load(), 1);
  EXPECT_EQ(ws.doubles(0).size(), 4u + 1u);  // chunk 0 ran on this thread
  ws.clear();
  EXPECT_TRUE(ws.doubles(0).empty());
  set_threads(1);
}

}  // namespace
}  // namespace litmus::par
